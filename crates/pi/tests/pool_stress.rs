//! Concurrency stress test for the shared material pool: N worker
//! threads × M inferences against one pool with a deliberately
//! undersized preprocessing budget.
//!
//! Two properties are pinned down exactly:
//!
//! * **ledger exactness under contention** — the pooled (offline) and
//!   inline totals must sum to exactly N×M consumed sets, with nothing
//!   lost or double-counted across the racing takers;
//! * **bit-for-bit equivalence with the sequential path** — the
//!   concurrent run consumes the same deterministic seed stream as a
//!   sequential session with the same master seed, so the *multiset* of
//!   reconstructed outputs must be identical down to the last bit (the
//!   probabilistic truncation error of each run depends on its seed, so
//!   this fails loudly if the pool ever skips, duplicates or invents a
//!   seed).

use c2pi_nn::layers::{Conv2d, MaxPool2d, Relu};
use c2pi_nn::Sequential;
use c2pi_pi::engine::specs_of;
use c2pi_pi::{PiConfig, PiSession};
use c2pi_tensor::Tensor;

const THREADS: usize = 4;
const PER_THREAD: usize = 6;
const OFFLINE_BUDGET: usize = 5; // deliberately < THREADS * PER_THREAD

fn tiny_prefix() -> Sequential {
    let mut s = Sequential::new();
    s.push(Conv2d::new(1, 3, 3, 1, 1, 1, 1));
    s.push(Relu::new());
    s.push(MaxPool2d::new(2, 2));
    s
}

#[test]
fn concurrent_pool_accounting_is_exact_and_outputs_match_sequential() {
    let total = THREADS * PER_THREAD;
    let cfg = PiConfig::default();
    let specs = specs_of(&tiny_prefix());
    let x = Tensor::rand_uniform(&[1, 1, 8, 8], -1.0, 1.0, 77);

    // Sequential reference: same master seed, same undersized budget,
    // one thread draining the pool in order.
    let mut sequential = PiSession::new(&specs, [1, 8, 8], cfg).unwrap();
    sequential.preprocess(OFFLINE_BUDGET).unwrap();
    let mut want: Vec<Vec<u64>> = (0..total)
        .map(|_| {
            let out = sequential.infer(&x).unwrap();
            c2pi_mpc::share::reconstruct(&out.client_share, &out.server_share)
        })
        .collect();

    // Concurrent run: N threads × M inferences against one shared pool.
    let shared = PiSession::new(&specs, [1, 8, 8], cfg).unwrap().into_shared();
    shared.preprocess(OFFLINE_BUDGET).unwrap();
    let mut got: Vec<Vec<u64>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let session = shared.clone();
                let input = x.clone();
                scope.spawn(move || {
                    (0..PER_THREAD)
                        .map(|_| {
                            let out = session.infer(&input).unwrap();
                            c2pi_mpc::share::reconstruct(&out.client_share, &out.server_share)
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().unwrap()).collect()
    });

    // Ledger exactness: pooled + inline == N×M, nothing lost under
    // contention, and the pool invariant holds.
    let ledger = shared.ledger();
    assert_eq!(ledger.consumed, total as u64, "every inference consumed exactly one set");
    assert_eq!(ledger.generated_offline, OFFLINE_BUDGET as u64);
    assert_eq!(
        ledger.generated_offline + ledger.generated_inline,
        total as u64,
        "pooled + inline generation must sum exactly to N*M"
    );
    assert_eq!(ledger.generated_inline, (total - OFFLINE_BUDGET) as u64);
    assert_eq!(ledger.available, 0);
    assert_eq!(
        ledger.generated_offline + ledger.generated_inline,
        ledger.consumed + ledger.available
    );
    // The sequential reference consumed the identical ledger totals.
    let seq_ledger = sequential.ledger();
    assert_eq!(seq_ledger.consumed, ledger.consumed);
    assert_eq!(seq_ledger.generated_inline, ledger.generated_inline);

    // Bit-for-bit: the concurrent run consumed the same seeds, so the
    // multisets of reconstructed outputs are identical.
    want.sort();
    got.sort();
    assert_eq!(want, got, "concurrent outputs must be a permutation of the sequential outputs");
}

#[test]
fn replenisher_under_load_keeps_accounting_exact() {
    let cfg = PiConfig::default();
    let specs = specs_of(&tiny_prefix());
    let x = Tensor::rand_uniform(&[1, 1, 8, 8], -1.0, 1.0, 78);
    let shared = PiSession::new(&specs, [1, 8, 8], cfg).unwrap().into_shared();
    let replenisher = shared.spawn_replenisher(2, 6);
    let total = 2 * 4;
    std::thread::scope(|scope| {
        for _ in 0..2 {
            let session = shared.clone();
            let input = x.clone();
            scope.spawn(move || {
                for _ in 0..4 {
                    session.infer(&input).unwrap();
                }
            });
        }
    });
    replenisher.stop().unwrap();
    let ledger = shared.ledger();
    assert_eq!(ledger.consumed, total as u64);
    // Background and inline generation race the takers, but the books
    // still balance exactly.
    assert_eq!(
        ledger.generated_offline + ledger.generated_inline,
        ledger.consumed + ledger.available
    );
}
