//! The cost report a private-inference run produces — the raw material
//! of the paper's Table II.

use c2pi_transport::{NetModel, TrafficSnapshot};
use serde::{Deserialize, Serialize};

/// Operation counts accumulated while walking the crypto-layer prefix.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct OpCounts {
    /// Input element count of every linear (conv/fc/affine) layer.
    pub linear_in_elems: Vec<usize>,
    /// Output element count of every linear layer.
    pub linear_out_elems: Vec<usize>,
    /// Total multiply-accumulates across linear layers.
    pub macs: u64,
    /// Total ReLU elements evaluated securely.
    pub relu_elems: usize,
    /// Total 2×2 max-pool windows evaluated securely.
    pub pool_windows: usize,
    /// Bit triples consumed (comparison-based backends).
    pub bit_triples: u64,
    /// AND gates garbled (GC backends). Since the offline-garbling
    /// refactor these are garbled in the *offline* phase.
    pub and_gates: u64,
    /// XOR gates in the same circuits — free under the free-XOR
    /// garbling scheme (no table, no hash), tracked to make the
    /// zero-cost term visible in cost reports.
    pub xor_gates: u64,
    /// Base OTs dealt per inference (one KAPPA-sized set per session —
    /// the setup the IKNP extension amortises).
    pub base_ots: u64,
    /// Label transfers carried by the session's OT extension (offline
    /// for GC backends: the evaluator's masked-input labels).
    pub ext_ots: u64,
    /// Bytes of the compact [`DealtSeed`](c2pi_mpc::dealer::DealtSeed)
    /// artifacts actually shipped by the seed-compressed dealer.
    pub seed_bytes: u64,
    /// Bytes the dealt correlations occupy once expanded locally from
    /// the seed — what pre-compression dealing used to ship.
    pub expanded_bytes: u64,
}

/// Preprocessing ledger: where the consumed correlated randomness came
/// from and what it cost to make. `generated_inline > 0` means the
/// session ran out of preprocessed material and had to pay dealer time
/// on the critical path — a bench reporting *true online latency*
/// should check this is zero.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PreprocessLedger {
    /// Inference material sets generated ahead of time by
    /// `PiSession::preprocess`.
    pub generated_offline: u64,
    /// Material sets generated on demand inside `infer` because the
    /// pool was empty (lazily, on the critical path).
    pub generated_inline: u64,
    /// Material sets consumed by inferences so far.
    pub consumed: u64,
    /// Material sets still pooled for future inferences.
    pub available: u64,
    /// Wall-clock seconds spent generating material (both kinds).
    pub generation_seconds: f64,
    /// Base OTs dealt across all generated material (KAPPA per set for
    /// extension-based backends).
    pub base_ots: u64,
    /// Labels transferred through the offline OT extension across all
    /// generated material.
    pub extended_ots: u64,
    /// Bytes of compact dealt-seed artifacts shipped across all
    /// generated material (the seed-compressed dealing cost).
    pub seed_bytes: u64,
    /// Bytes the same material occupies expanded — what dealing would
    /// have shipped before seed compression.
    pub expanded_bytes: u64,
    /// Material sets recovered from a persistent
    /// [`MaterialStore`](crate::store::MaterialStore) at warm boot
    /// (re-expanded from their recorded seeds, not newly dealt).
    pub restored: u64,
}

/// Complete cost profile of one private-inference run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PiReport {
    /// Engine name (`delphi` / `cheetah`).
    pub backend: &'static str,
    /// Exact traffic measured on the channel.
    pub online: TrafficSnapshot,
    /// Modelled offline (HE / correlation-setup) traffic.
    pub offline: TrafficSnapshot,
    /// Wall-clock seconds of the protocol threads (online phase only —
    /// preprocessing time is in [`PiReport::preprocessing`]).
    pub online_seconds: f64,
    /// Modelled offline compute seconds.
    pub offline_seconds: f64,
    /// Operation counts.
    pub counts: OpCounts,
    /// Consumed-vs-generated preprocessing state at the time of the run.
    pub preprocessing: PreprocessLedger,
}

impl PiReport {
    /// Total traffic, online plus modelled offline.
    pub fn traffic_total(&self) -> TrafficSnapshot {
        self.online.plus(&self.offline)
    }

    /// Total communication in megabytes (the paper's `Commu. (MB)`).
    pub fn comm_mb(&self) -> f64 {
        self.traffic_total().megabytes()
    }

    /// End-to-end latency in seconds under a network model (the paper's
    /// `Latency (s)` columns).
    pub fn latency_seconds(&self, net: &NetModel) -> f64 {
        net.latency_seconds(&self.traffic_total(), self.online_seconds + self.offline_seconds)
    }

    /// Merges another report into this one (used to aggregate phases or
    /// batches). The preprocessing ledger keeps the *later* snapshot
    /// (ledgers are cumulative session state, not per-run deltas).
    pub fn merge(&mut self, other: &PiReport) {
        self.online = self.online.plus(&other.online);
        self.offline = self.offline.plus(&other.offline);
        self.online_seconds += other.online_seconds;
        self.offline_seconds += other.offline_seconds;
        self.counts.linear_in_elems.extend(&other.counts.linear_in_elems);
        self.counts.linear_out_elems.extend(&other.counts.linear_out_elems);
        self.counts.macs += other.counts.macs;
        self.counts.relu_elems += other.counts.relu_elems;
        self.counts.pool_windows += other.counts.pool_windows;
        self.counts.bit_triples += other.counts.bit_triples;
        self.counts.and_gates += other.counts.and_gates;
        self.counts.xor_gates += other.counts.xor_gates;
        self.counts.base_ots += other.counts.base_ots;
        self.counts.ext_ots += other.counts.ext_ots;
        self.counts.seed_bytes += other.counts.seed_bytes;
        self.counts.expanded_bytes += other.counts.expanded_bytes;
        self.preprocessing = other.preprocessing;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(bytes: u64, secs: f64) -> PiReport {
        PiReport {
            backend: "delphi",
            online: TrafficSnapshot {
                bytes_client_to_server: bytes,
                bytes_server_to_client: 0,
                messages: 1,
                flights: 2,
            },
            offline: TrafficSnapshot::default(),
            online_seconds: secs,
            offline_seconds: 0.0,
            counts: OpCounts::default(),
            preprocessing: PreprocessLedger::default(),
        }
    }

    #[test]
    fn comm_mb_uses_decimal_megabytes() {
        assert!((report(5_000_000, 0.0).comm_mb() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn latency_adds_compute_and_network_terms() {
        let r = report(44_000_000, 1.0);
        let wan = NetModel::wan();
        let lat = r.latency_seconds(&wan);
        // 1 s compute + 1 s bandwidth + 1 RTT.
        assert!((lat - (1.0 + 1.0 + 0.040)).abs() < 1e-6, "latency {lat}");
    }

    #[test]
    fn merge_accumulates() {
        let mut a = report(100, 0.5);
        a.merge(&report(200, 0.25));
        assert_eq!(a.online.bytes_client_to_server, 300);
        assert!((a.online_seconds - 0.75).abs() < 1e-9);
    }
}
