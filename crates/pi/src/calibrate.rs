//! Online-phase cost calibration: per-operation timing coefficients
//! that price an [`OpCounts`] profile into online compute seconds.
//!
//! The offline phases are charged analytically by
//! [`crate::cost::OfflineCostModel`]; this module is its online
//! counterpart. Two sources of coefficients exist:
//!
//! * **defaults** — [`OnlineCostModel::for_backend`] ships fixed,
//!   documented constants whose *relative* magnitudes match the
//!   published systems (Delphi's GC non-linearities dominate its online
//!   phase; Cheetah's comparison-based ReLU is two orders of magnitude
//!   leaner). Because they are constants, every estimate derived from
//!   them is bit-reproducible — the deployment planner's default, so
//!   its ranked tables are byte-identical across runs and machines;
//! * **measured** — [`Calibrator::measure`] runs per-layer micro-timings
//!   of the real protocol on this machine and fits the same
//!   coefficients. Estimates then track local hardware but are no
//!   longer deterministic; callers opt in (`plan_report --calibrate`).
//!
//! ```
//! use c2pi_pi::calibrate::OnlineCostModel;
//! use c2pi_pi::report::OpCounts;
//! use c2pi_pi::PiBackend;
//!
//! let counts = OpCounts { macs: 1_000_000, relu_elems: 4096, ..Default::default() };
//! let delphi = OnlineCostModel::for_backend(PiBackend::Delphi).online_seconds(&counts);
//! let cheetah = OnlineCostModel::for_backend(PiBackend::Cheetah).online_seconds(&counts);
//! assert!(delphi > cheetah); // GC ReLU dominates Delphi's online phase
//! ```

use crate::engine::{specs_of, PiBackend, PiConfig};
use crate::report::OpCounts;
use crate::session::PiSession;
use crate::Result;
use c2pi_nn::layers::{Conv2d, MaxPool2d, Relu};
use c2pi_nn::Sequential;
use c2pi_tensor::Tensor;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Per-operation online timing coefficients (seconds per unit).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OnlineCostModel {
    /// Seconds per multiply-accumulate of the masked-linear protocol
    /// (local ring arithmetic; identical for both backends).
    pub sec_per_mac: f64,
    /// Seconds per ReLU element (GC evaluation for Delphi,
    /// comparison-based DReLU for Cheetah).
    pub sec_per_relu_elem: f64,
    /// Seconds per 2×2 max-pool window (four-way secure maximum).
    pub sec_per_pool_window: f64,
    /// Fixed per-inference overhead: input sharing, channel setup and
    /// the final share handling.
    pub base_seconds: f64,
}

impl OnlineCostModel {
    /// Default Delphi-like coefficients. Since the offline-garbling
    /// refactor the online phase only *evaluates* pre-garbled circuits
    /// (one PRF per AND gate; garbling, tables and OT moved offline),
    /// so the per-element cost sits roughly 5× under the old
    /// garble-online figures — still well above Cheetah's
    /// comparison-based path.
    pub fn delphi() -> Self {
        OnlineCostModel {
            sec_per_mac: 4.0e-9,
            sec_per_relu_elem: 5.0e-7,
            sec_per_pool_window: 2.0e-6,
            base_seconds: 1.0e-3,
        }
    }

    /// Default Cheetah-like coefficients: comparison-based
    /// non-linearities, roughly two orders of magnitude leaner online.
    pub fn cheetah() -> Self {
        OnlineCostModel {
            sec_per_mac: 4.0e-9,
            sec_per_relu_elem: 4.0e-8,
            sec_per_pool_window: 1.6e-7,
            base_seconds: 1.0e-3,
        }
    }

    /// The default (deterministic) coefficients for a backend tag.
    pub fn for_backend(backend: PiBackend) -> Self {
        match backend {
            PiBackend::Delphi => OnlineCostModel::delphi(),
            PiBackend::Cheetah => OnlineCostModel::cheetah(),
        }
    }

    /// Estimated online compute seconds for an operation-count profile.
    pub fn online_seconds(&self, counts: &OpCounts) -> f64 {
        self.base_seconds
            + counts.macs as f64 * self.sec_per_mac
            + counts.relu_elems as f64 * self.sec_per_relu_elem
            + counts.pool_windows as f64 * self.sec_per_pool_window
    }
}

/// Measures per-layer micro-timings of the real protocol and fits an
/// [`OnlineCostModel`] for this machine.
///
/// The fit runs three tiny prefixes through a [`PiSession`] on the
/// in-memory transport — linear only, linear+ReLU, linear+ReLU+pool —
/// and attributes the timing *differences* to the added operation, so
/// shared overhead cancels. Preprocessing runs ahead of the timed loop;
/// only online seconds are measured.
#[derive(Debug, Clone, Copy)]
pub struct Calibrator {
    /// Timed repetitions per prefix; the minimum over repetitions is
    /// used (robust against scheduler noise).
    pub reps: usize,
    /// Input seed for the probe tensors.
    pub seed: u64,
}

impl Default for Calibrator {
    fn default() -> Self {
        Calibrator { reps: 3, seed: 11 }
    }
}

impl Calibrator {
    fn time_prefix(&self, seq: &Sequential, backend: PiBackend) -> Result<(f64, OpCounts)> {
        let cfg = PiConfig { backend, ..Default::default() };
        let mut session = PiSession::new(&specs_of(seq), [1, 16, 16], cfg)?;
        session.preprocess(self.reps + 1)?;
        let x = Tensor::rand_uniform(&[1, 1, 16, 16], -1.0, 1.0, self.seed);
        // Warm-up inference (page-in, lazy allocations), untimed.
        let warm = session.infer(&x)?;
        let mut best = f64::INFINITY;
        for _ in 0..self.reps.max(1) {
            let start = Instant::now();
            session.infer(&x)?;
            best = best.min(start.elapsed().as_secs_f64());
        }
        Ok((best, warm.report.counts))
    }

    /// Fits the per-operation coefficients for a backend on this
    /// machine. Not deterministic — wall-clock measurements differ run
    /// to run; use [`OnlineCostModel::for_backend`] when reproducible
    /// estimates matter more than local accuracy.
    ///
    /// # Errors
    ///
    /// Propagates engine errors from the micro-timing sessions.
    pub fn measure(&self, backend: PiBackend) -> Result<OnlineCostModel> {
        // Every coefficient comes from a timing *difference*, so the
        // fixed per-inference overhead (input sharing, channel setup)
        // cancels instead of being folded into the first coefficient —
        // a small conv is dominated by that overhead, and `t/macs`
        // would overprice real prefixes by orders of magnitude.
        let mut lin_small = Sequential::new();
        lin_small.push(Conv2d::new(1, 4, 3, 1, 1, 1, 5));
        let (t_small, c_small) = self.time_prefix(&lin_small, backend)?;

        let mut lin_big = Sequential::new();
        lin_big.push(Conv2d::new(1, 12, 3, 1, 1, 1, 5)); // 3x the MACs, same shape
        let (t_big, c_big) = self.time_prefix(&lin_big, backend)?;

        let mut relu = Sequential::new();
        relu.push(Conv2d::new(1, 4, 3, 1, 1, 1, 5));
        relu.push(Relu::new());
        let (t_relu, c_relu) = self.time_prefix(&relu, backend)?;

        let mut pool = Sequential::new();
        pool.push(Conv2d::new(1, 4, 3, 1, 1, 1, 5));
        pool.push(Relu::new());
        pool.push(MaxPool2d::new(2, 2));
        let (t_pool, c_pool) = self.time_prefix(&pool, backend)?;

        // Clamp at tiny positive floors so scheduler jitter cannot
        // produce zero or negative coefficients.
        let extra_macs = (c_big.macs.saturating_sub(c_small.macs)).max(1) as f64;
        let sec_per_mac = ((t_big - t_small) / extra_macs).max(1e-12);
        let relu_elems = c_relu.relu_elems.max(1) as f64;
        let sec_per_relu_elem = ((t_relu - t_small) / relu_elems).max(1e-12);
        let windows = c_pool.pool_windows.max(1) as f64;
        let sec_per_pool_window = ((t_pool - t_relu) / windows).max(1e-12);
        // The residual of the small prefix is the fixed overhead.
        let base_seconds = (t_small - c_small.macs as f64 * sec_per_mac).max(1e-6);
        Ok(OnlineCostModel { sec_per_mac, sec_per_relu_elem, sec_per_pool_window, base_seconds })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_keep_the_published_asymmetry() {
        let counts = OpCounts { relu_elems: 100_000, ..Default::default() };
        let d = OnlineCostModel::delphi().online_seconds(&counts);
        let c = OnlineCostModel::cheetah().online_seconds(&counts);
        assert!(d > 10.0 * c, "delphi {d} vs cheetah {c}");
    }

    #[test]
    fn estimates_scale_with_counts() {
        let m = OnlineCostModel::cheetah();
        let small = OpCounts { macs: 1_000, ..Default::default() };
        let big = OpCounts { macs: 1_000_000_000, ..Default::default() };
        assert!(m.online_seconds(&big) > m.online_seconds(&small));
        assert!(m.online_seconds(&OpCounts::default()) >= m.base_seconds);
    }

    #[test]
    fn measured_coefficients_are_positive_and_usable() {
        let cal = Calibrator { reps: 1, seed: 3 };
        let m = cal.measure(PiBackend::Cheetah).unwrap();
        assert!(m.sec_per_mac > 0.0);
        assert!(m.sec_per_relu_elem > 0.0);
        assert!(m.sec_per_pool_window > 0.0);
        let est = m.online_seconds(&OpCounts { macs: 1000, relu_elems: 64, ..Default::default() });
        assert!(est.is_finite() && est > 0.0);
    }
}
