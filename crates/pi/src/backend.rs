//! Pluggable protocol backends for the PI engine.
//!
//! [`PiBackendImpl`] is the extension point the engine dispatches
//! through: a backend decides how non-linear layers (ReLU, max pool) are
//! prepared offline and executed online, which protocol runs the linear
//! layers, and which analytic model prices its offline phase. The two
//! published systems the paper compares against ship as the two built-in
//! implementations — [`delphi()`] (garbled circuits) and [`cheetah()`]
//! (comparison-based with silent correlations) — and a third backend is
//! a new module implementing this trait, not an engine rewrite.
//!
//! Offline material crosses the trait as type-erased [`NlMaterial`]
//! boxes: each backend defines its own correlation types and downcasts
//! them back in its online hooks, so backends with novel correlation
//! shapes need no engine changes.

use crate::cost::OfflineCostModel;
use crate::engine::PiConfig;
use crate::report::OpCounts;
use crate::{PiError, Result};
use c2pi_mpc::beaver::{linear_client, linear_server};
use c2pi_mpc::dealer::{Dealer, LinearCorrClient, LinearCorrServer};
use c2pi_mpc::prg::Prg;
use c2pi_mpc::ring::RingMatrix;
use c2pi_mpc::share::ShareVec;
use c2pi_transport::{Channel, Side};
use std::any::Any;
use std::fmt;
use std::sync::Arc;

mod cheetah;
mod delphi;

pub use cheetah::Cheetah;
pub use delphi::Delphi;

/// Type-erased per-inference offline material for one non-linear layer.
/// Backends define the concrete type and downcast in their online hooks.
pub type NlMaterial = Box<dyn Any + Send>;

/// A protocol suite the engine can execute the crypto prefix with.
///
/// The `prepare_*` hooks run in the offline phase (dealer side) and the
/// `*_online` hooks in the online phase (inside the party threads). The
/// linear-layer hooks default to the masked-linear protocol both Delphi
/// and Cheetah share; override them for backends with a different linear
/// execution.
pub trait PiBackendImpl: fmt::Debug + Send + Sync {
    /// Engine name for reports (`delphi` / `cheetah` / yours).
    fn name(&self) -> &'static str;

    /// The analytic model pricing this backend's offline phase.
    fn cost_model(&self) -> OfflineCostModel;

    /// Per-inference session setup, run once before the per-layer
    /// `prepare_*` hooks: account (and deal) the correlations every
    /// layer shares. The built-in backends charge one KAPPA-sized
    /// base-OT set here — the setup their session-long OT extension
    /// amortises across all label transfers / silent correlations —
    /// instead of one set per circuit chunk as before the
    /// offline-garbling refactor.
    fn prepare_session(&self, dealer: &mut Dealer, counts: &mut OpCounts) {
        let _ = (dealer, counts);
    }

    /// Generates offline material for a ReLU over `n` shared elements,
    /// returning the (client, server) halves and accumulating
    /// backend-specific counts (AND gates, bit triples).
    fn prepare_relu(
        &self,
        dealer: &mut Dealer,
        n: usize,
        cfg: &PiConfig,
        counts: &mut OpCounts,
    ) -> (NlMaterial, NlMaterial);

    /// Generates offline material for a 2×2 max pool over `windows`
    /// four-element windows.
    fn prepare_maxpool(
        &self,
        dealer: &mut Dealer,
        windows: usize,
        cfg: &PiConfig,
        counts: &mut OpCounts,
    ) -> (NlMaterial, NlMaterial);

    /// Online ReLU on a share of `n` elements. `side` says which party
    /// this thread is; `prg` is the party's local randomness (the
    /// garbler's wire labels for GC backends).
    ///
    /// # Errors
    ///
    /// Returns protocol/transport errors, or [`PiError::BadConfig`] when
    /// `material` is not this backend's type.
    fn relu_online(
        &self,
        ep: &dyn Channel,
        side: Side,
        share: &ShareVec,
        material: NlMaterial,
        cfg: &PiConfig,
        prg: &mut Prg,
    ) -> Result<ShareVec>;

    /// Online 2×2 max pool. `quads` holds the gathered window elements
    /// (`4·windows` values, window-major — the public permutation is
    /// applied by the engine on both sides); returns one share per
    /// window.
    ///
    /// # Errors
    ///
    /// Returns protocol/transport errors, or [`PiError::BadConfig`] when
    /// `material` is not this backend's type.
    fn maxpool_online(
        &self,
        ep: &dyn Channel,
        side: Side,
        quads: &ShareVec,
        material: NlMaterial,
        cfg: &PiConfig,
        prg: &mut Prg,
    ) -> Result<ShareVec>;

    /// Offline correlation for a linear layer with server-known weights
    /// `w` applied to a shared input with `cols` columns. Defaults to
    /// the shared masked-linear correlation.
    ///
    /// # Errors
    ///
    /// Propagates dealer errors.
    fn prepare_linear(
        &self,
        dealer: &mut Dealer,
        w: &RingMatrix,
        cols: usize,
    ) -> Result<(LinearCorrClient, LinearCorrServer)> {
        Ok(dealer.linear_corr(w, cols)?)
    }

    /// Client side of the online linear-layer protocol. Defaults to the
    /// one-flight masked-linear protocol.
    ///
    /// # Errors
    ///
    /// Returns transport or shape errors.
    fn linear_online_client(
        &self,
        ep: &dyn Channel,
        x0: &RingMatrix,
        corr: &LinearCorrClient,
    ) -> Result<RingMatrix> {
        Ok(linear_client(ep, x0, corr)?)
    }

    /// Server side of the online linear-layer protocol.
    ///
    /// # Errors
    ///
    /// Returns transport or shape errors.
    fn linear_online_server(
        &self,
        ep: &dyn Channel,
        w: &RingMatrix,
        x1: &RingMatrix,
        corr: &LinearCorrServer,
    ) -> Result<RingMatrix> {
        Ok(linear_server(ep, w, x1, corr)?)
    }

    // --- Batched server-side hooks ------------------------------------
    //
    // The reactor's coalescer fuses k concurrent inferences into one
    // protocol run; these hooks are the per-layer entry points it walks.
    // Each batch member keeps its own channel, material, and PRG, so the
    // defaults below — a per-member loop over the scalar hooks — are
    // bit-for-bit the unbatched protocol and safe for custom backends.
    // The loops are deadlock-free: clients progress independently and
    // flights buffer in the transport, so serving members in index order
    // never blocks on a member that is still mid-computation. Built-in
    // backends override these to fuse the server-side compute (wider
    // matmuls, one parallel GC region) while leaving every member's wire
    // traffic unchanged.

    /// Online ReLU over `k` batch members, one channel/share/material/PRG
    /// per member. Defaults to a per-member loop over [`Self::relu_online`].
    ///
    /// # Errors
    ///
    /// Returns the first member's protocol/transport error.
    fn relu_online_batch(
        &self,
        eps: &[&dyn Channel],
        side: Side,
        shares: &[ShareVec],
        materials: Vec<NlMaterial>,
        cfg: &PiConfig,
        prgs: &mut [Prg],
    ) -> Result<Vec<ShareVec>> {
        check_batch_arity("relu", eps.len(), shares.len(), materials.len(), prgs.len())?;
        let mut out = Vec::with_capacity(eps.len());
        for (((ep, share), material), prg) in
            eps.iter().zip(shares).zip(materials).zip(prgs.iter_mut())
        {
            out.push(self.relu_online(*ep, side, share, material, cfg, prg)?);
        }
        Ok(out)
    }

    /// Online 2×2 max pool over `k` batch members. Defaults to a
    /// per-member loop over [`Self::maxpool_online`].
    ///
    /// # Errors
    ///
    /// Returns the first member's protocol/transport error.
    fn maxpool_online_batch(
        &self,
        eps: &[&dyn Channel],
        side: Side,
        quads: &[ShareVec],
        materials: Vec<NlMaterial>,
        cfg: &PiConfig,
        prgs: &mut [Prg],
    ) -> Result<Vec<ShareVec>> {
        check_batch_arity("maxpool", eps.len(), quads.len(), materials.len(), prgs.len())?;
        let mut out = Vec::with_capacity(eps.len());
        for (((ep, quad), material), prg) in
            eps.iter().zip(quads).zip(materials).zip(prgs.iter_mut())
        {
            out.push(self.maxpool_online(*ep, side, quad, material, cfg, prg)?);
        }
        Ok(out)
    }

    /// Server side of the online linear layer over `k` batch members
    /// sharing the weight matrix `w`. Defaults to a per-member loop over
    /// [`Self::linear_online_server`]; built-ins override it with one
    /// column-stacked matmul over all members.
    ///
    /// # Errors
    ///
    /// Returns transport or shape errors.
    fn linear_online_server_batch(
        &self,
        eps: &[&dyn Channel],
        w: &RingMatrix,
        x1s: &[RingMatrix],
        corrs: &[&LinearCorrServer],
    ) -> Result<Vec<RingMatrix>> {
        check_batch_arity("linear", eps.len(), x1s.len(), corrs.len(), eps.len())?;
        let mut out = Vec::with_capacity(eps.len());
        for ((ep, x1), corr) in eps.iter().zip(x1s).zip(corrs) {
            out.push(self.linear_online_server(*ep, w, x1, corr)?);
        }
        Ok(out)
    }
}

/// Uniform arity check for the batched hooks: every per-member slice
/// must cover the same nonempty member set.
fn check_batch_arity(
    what: &str,
    eps: usize,
    shares: usize,
    materials: usize,
    prgs: usize,
) -> Result<()> {
    if eps == 0 || shares != eps || materials != eps || prgs != eps {
        return Err(PiError::BadConfig(format!(
            "batched {what} over {eps} channels, {shares} shares, {materials} materials, {prgs} prgs"
        )));
    }
    Ok(())
}

/// The Delphi-style backend: GC non-linearities, heavyweight HE offline.
pub fn delphi() -> Arc<dyn PiBackendImpl> {
    Arc::new(Delphi)
}

/// The Cheetah-style backend: comparison-based non-linearities with
/// silent correlations, lean lattice linear layers.
pub fn cheetah() -> Arc<dyn PiBackendImpl> {
    Arc::new(Cheetah)
}

/// The backend registry: resolves a [`crate::PiBackend`] tag to its
/// implementation. Registering a third built-in backend means adding a
/// module, a constructor and an arm here — nothing in the engine
/// changes.
pub(crate) fn resolve(tag: crate::engine::PiBackend) -> Arc<dyn PiBackendImpl> {
    match tag {
        crate::engine::PiBackend::Delphi => delphi(),
        crate::engine::PiBackend::Cheetah => cheetah(),
    }
}

/// Anything that resolves to a backend implementation — lets builder
/// APIs accept both a [`crate::PiBackend`] tag and a custom
/// `Arc<dyn PiBackendImpl>`.
pub trait IntoBackend {
    /// Resolves to the implementation.
    fn into_backend(self) -> Arc<dyn PiBackendImpl>;
}

impl IntoBackend for Arc<dyn PiBackendImpl> {
    fn into_backend(self) -> Arc<dyn PiBackendImpl> {
        self
    }
}

impl IntoBackend for crate::engine::PiBackend {
    fn into_backend(self) -> Arc<dyn PiBackendImpl> {
        self.engine()
    }
}

/// Downcast helper with a uniform error for material-type mismatches.
pub(crate) fn downcast_material<T: 'static>(
    material: NlMaterial,
    backend: &'static str,
) -> Result<Box<T>> {
    material.downcast::<T>().map_err(|_| {
        PiError::BadConfig(format!("offline material was not prepared by the {backend} backend"))
    })
}

/// Splits the per-window gathered quads (window-major `a b c d` groups)
/// into four parallel vectors — the layout the tournament-style maxpool
/// protocols consume.
pub(crate) fn split_quads(share: &ShareVec) -> [ShareVec; 4] {
    let n = share.len() / 4;
    let mut parts: [Vec<u64>; 4] = [
        Vec::with_capacity(n),
        Vec::with_capacity(n),
        Vec::with_capacity(n),
        Vec::with_capacity(n),
    ];
    for (i, &v) in share.as_raw().iter().enumerate() {
        parts[i % 4].push(v);
    }
    let [a, b, c, d] = parts;
    [ShareVec::from_raw(a), ShareVec::from_raw(b), ShareVec::from_raw(c), ShareVec::from_raw(d)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::PiBackend;

    #[test]
    fn registry_resolves_both_builtins() {
        assert_eq!(delphi().name(), "delphi");
        assert_eq!(cheetah().name(), "cheetah");
        assert_eq!(PiBackend::Delphi.into_backend().name(), "delphi");
        assert_eq!(PiBackend::Cheetah.into_backend().name(), "cheetah");
    }

    #[test]
    fn split_quads_deinterleaves() {
        let s = ShareVec::from_raw(vec![1, 2, 3, 4, 5, 6, 7, 8]);
        let [a, b, c, d] = split_quads(&s);
        assert_eq!(a.as_raw(), &[1, 5]);
        assert_eq!(b.as_raw(), &[2, 6]);
        assert_eq!(c.as_raw(), &[3, 7]);
        assert_eq!(d.as_raw(), &[4, 8]);
    }

    #[test]
    fn downcast_mismatch_is_a_config_error() {
        let boxed: NlMaterial = Box::new(42u32);
        let err = downcast_material::<String>(boxed, "delphi").unwrap_err();
        assert!(matches!(err, PiError::BadConfig(_)));
    }
}
