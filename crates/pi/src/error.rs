//! Error type for PI engine operations.

use c2pi_mpc::MpcError;
use c2pi_nn::NnError;
use c2pi_tensor::TensorError;
use std::fmt;

/// Error returned by fallible PI operations.
#[derive(Debug, Clone, PartialEq)]
pub enum PiError {
    /// An MPC protocol failed.
    Mpc(MpcError),
    /// A network-layer error surfaced through the model interface.
    Nn(NnError),
    /// A tensor kernel rejected its inputs.
    Tensor(TensorError),
    /// A layer that has no secure execution appeared in the crypto prefix.
    UnsupportedLayer(String),
    /// Invalid configuration (batch > 1, odd pool size, …).
    BadConfig(String),
    /// One of the party threads panicked.
    PartyPanic(&'static str),
    /// The persistent material store failed (I/O, corruption, or a
    /// fingerprint mismatch with the session it was opened for).
    Store(String),
}

impl fmt::Display for PiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PiError::Mpc(e) => write!(f, "mpc error: {e}"),
            PiError::Nn(e) => write!(f, "network error: {e}"),
            PiError::Tensor(e) => write!(f, "tensor error: {e}"),
            PiError::UnsupportedLayer(d) => write!(f, "no secure execution for layer {d}"),
            PiError::BadConfig(msg) => write!(f, "bad configuration: {msg}"),
            PiError::PartyPanic(side) => write!(f, "{side} thread panicked"),
            PiError::Store(msg) => write!(f, "material store: {msg}"),
        }
    }
}

impl std::error::Error for PiError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PiError::Mpc(e) => Some(e),
            PiError::Nn(e) => Some(e),
            PiError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MpcError> for PiError {
    fn from(e: MpcError) -> Self {
        PiError::Mpc(e)
    }
}

impl From<c2pi_transport::TransportError> for PiError {
    fn from(e: c2pi_transport::TransportError) -> Self {
        PiError::Mpc(MpcError::Transport(e))
    }
}

impl From<NnError> for PiError {
    fn from(e: NnError) -> Self {
        PiError::Nn(e)
    }
}

impl From<TensorError> for PiError {
    fn from(e: TensorError) -> Self {
        PiError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_variants() {
        assert!(PiError::UnsupportedLayer("gelu".into()).to_string().contains("gelu"));
        assert!(PiError::PartyPanic("client").to_string().contains("client"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PiError>();
    }
}
