//! The private-inference engine: runs a model's crypto-layer prefix as a
//! real two-party protocol between a client thread (holding the input)
//! and a server thread (holding the weights).

use crate::cost::OfflineCostModel;
use crate::report::{OpCounts, PiReport};
use crate::{PiError, Result};
use c2pi_mpc::beaver::{
    affine_client, affine_server, linear_client, linear_server, truncate_share,
};
use c2pi_mpc::dealer::{
    AffineCorrClient, AffineCorrServer, BaseOtReceiver, BaseOtSender, Dealer, LinearCorrClient,
    LinearCorrServer, TripleShare,
};
use c2pi_mpc::ot::{BitTriples, KAPPA};
use c2pi_mpc::prg::Prg;
use c2pi_mpc::relu::{
    drelu_bit_triples, gc_maxpool4_evaluator, gc_maxpool4_garbler, gc_relu_evaluator,
    gc_relu_garbler, max_interactive, relu_interactive,
};
use c2pi_mpc::ring::{im2col_ring, RingMatrix};
use c2pi_mpc::share::{share_secret, ShareVec};
use c2pi_mpc::FixedPoint;
use c2pi_nn::{LayerSpec, Sequential};
use c2pi_tensor::conv::Conv2dGeom;
use c2pi_tensor::Tensor;
use c2pi_transport::{channel_pair, Endpoint};
use std::time::Instant;

/// Which published system the engine emulates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PiBackend {
    /// Delphi (Mishra et al., USENIX Security 2020): GC non-linearities,
    /// heavyweight HE offline.
    Delphi,
    /// Cheetah (Huang et al., USENIX Security 2022): comparison-based
    /// non-linearities with silent correlations, lean lattice linear
    /// layers.
    Cheetah,
}

impl PiBackend {
    /// Engine name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            PiBackend::Delphi => "delphi",
            PiBackend::Cheetah => "cheetah",
        }
    }

    /// The matching offline cost model.
    pub fn cost_model(&self) -> OfflineCostModel {
        match self {
            PiBackend::Delphi => OfflineCostModel::delphi(),
            PiBackend::Cheetah => OfflineCostModel::cheetah(),
        }
    }
}

/// Engine configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PiConfig {
    /// Backend protocol suite.
    pub backend: PiBackend,
    /// Fixed-point format.
    pub fixed: FixedPoint,
    /// Seed for the trusted dealer and all protocol randomness.
    pub dealer_seed: u64,
    /// Maximum elements per garbled-circuit batch (bounds memory).
    pub gc_chunk: usize,
}

impl Default for PiConfig {
    fn default() -> Self {
        PiConfig {
            backend: PiBackend::Cheetah,
            fixed: FixedPoint::default(),
            dealer_seed: 7,
            gc_chunk: 1024,
        }
    }
}

/// Result of running the crypto prefix: both parties' shares of the
/// boundary activation plus the cost report.
#[derive(Debug, Clone)]
pub struct PiOutcome {
    /// Client's additive share of the boundary activation.
    pub client_share: ShareVec,
    /// Server's additive share of the boundary activation.
    pub server_share: ShareVec,
    /// Public shape of the boundary activation.
    pub dims: Vec<usize>,
    /// Cost profile of the run.
    pub report: PiReport,
}

impl PiOutcome {
    /// Reconstructs the boundary activation (testing / the C2PI reveal
    /// step after the client noises its share).
    ///
    /// # Errors
    ///
    /// Returns a tensor error when shares and shape disagree.
    pub fn reconstruct(&self, fp: FixedPoint) -> Result<Tensor> {
        let raw = c2pi_mpc::share::reconstruct(&self.client_share, &self.server_share);
        Ok(fp.decode_tensor(&raw, &self.dims)?)
    }
}

/// Public per-layer execution plan (both parties know the crypto-prefix
/// architecture; only weights are server-private).
#[derive(Debug, Clone)]
enum Step {
    Conv { c: usize, h: usize, w: usize, geom: Conv2dGeom, oc: usize },
    Fc { k: usize, out: usize },
    Relu { n: usize },
    MaxPool { c: usize, h: usize, w: usize },
    AvgPool { c: usize, h: usize, w: usize, window: usize, stride: usize },
    Flatten,
    Affine,
}

enum ClientMat {
    Lin(LinearCorrClient),
    GcNl(Vec<BaseOtReceiver>),
    IntNl(Vec<(BitTriples, TripleShare, TripleShare)>),
    Affine(AffineCorrClient),
    None,
}

enum ServerMat {
    Lin { w: RingMatrix, bias2f: Vec<u64>, corr: LinearCorrServer },
    GcNl(Vec<BaseOtSender>),
    IntNl(Vec<(BitTriples, TripleShare, TripleShare)>),
    Affine { scale: Vec<u64>, shift2f: Vec<u64>, corr: AffineCorrServer },
    None,
}

/// Extracts the protocol-facing specs of a layer stack.
pub fn specs_of(seq: &Sequential) -> Vec<LayerSpec> {
    seq.layers().iter().map(|l| l.spec()).collect()
}

fn chunks_of(n: usize, chunk: usize) -> Vec<usize> {
    let mut out = Vec::new();
    let mut rem = n;
    while rem > 0 {
        let c = rem.min(chunk);
        out.push(c);
        rem -= c;
    }
    out
}

/// Gathers 2×2 window elements of a `[c, h, w]` share into four parallel
/// index lists (public permutation, applied by both parties).
fn pool_windows(c: usize, h: usize, w: usize) -> Vec<[usize; 4]> {
    let mut idx = Vec::with_capacity(c * (h / 2) * (w / 2));
    for ch in 0..c {
        let plane = ch * h * w;
        for oy in 0..h / 2 {
            for ox in 0..w / 2 {
                let base = plane + 2 * oy * w + 2 * ox;
                idx.push([base, base + 1, base + w, base + w + 1]);
            }
        }
    }
    idx
}

/// Runs the crypto-layer prefix of a model under the configured backend.
///
/// `x` must be a single image `[1, c, h, w]`; the specs are the prefix
/// layers in order (see [`specs_of`]).
///
/// # Errors
///
/// Returns [`PiError::UnsupportedLayer`] for layers without a secure
/// execution, [`PiError::BadConfig`] for shape problems, and protocol
/// errors from the underlying MPC stack.
pub fn run_prefix(specs: &[LayerSpec], x: &Tensor, cfg: &PiConfig) -> Result<PiOutcome> {
    let (_, c, h, w) = x.shape().as_nchw()?;
    let fp = cfg.fixed;
    // ---- plan + dealer materials (offline phase) ----
    let mut dealer = Dealer::new(cfg.dealer_seed);
    let mut steps = Vec::with_capacity(specs.len());
    let mut cmats = Vec::with_capacity(specs.len());
    let mut smats = Vec::with_capacity(specs.len());
    let mut counts = OpCounts::default();
    // Current public shape: Some((c,h,w)) for NCHW, or flat length.
    let mut cur_chw: Option<(usize, usize, usize)> = Some((c, h, w));
    let mut cur_flat = c * h * w;
    for spec in specs {
        match spec {
            LayerSpec::Conv2d { weight, bias, geom } => {
                let (cc, hh, ww) = cur_chw
                    .ok_or_else(|| PiError::BadConfig("conv after flatten".into()))?;
                let (oc, ic, k, _) = weight.shape().as_nchw()?;
                if ic != cc {
                    return Err(PiError::BadConfig(format!(
                        "conv expects {ic} channels, activation has {cc}"
                    )));
                }
                let (oh, ow) = geom.output_hw(hh, ww)?;
                let ckk = ic * k * k;
                let w_ring = RingMatrix::from_vec(fp.encode_tensor(weight), oc, ckk)?;
                let (corr_c, corr_s) = dealer.linear_corr(&w_ring, oh * ow)?;
                let scale2 = fp.scale() * fp.scale();
                let bias2f: Vec<u64> =
                    bias.as_slice().iter().map(|&b| (b * scale2).round() as i64 as u64).collect();
                counts.linear_in_elems.push(cc * hh * ww);
                counts.linear_out_elems.push(oc * oh * ow);
                counts.macs += (oc * ckk * oh * ow) as u64;
                steps.push(Step::Conv { c: cc, h: hh, w: ww, geom: *geom, oc });
                cmats.push(ClientMat::Lin(corr_c));
                smats.push(ServerMat::Lin { w: w_ring, bias2f, corr: corr_s });
                cur_chw = Some((oc, oh, ow));
                cur_flat = oc * oh * ow;
            }
            LayerSpec::Linear { weight, bias } => {
                let (k_in, out) = weight.shape().as_matrix()?;
                if k_in != cur_flat {
                    return Err(PiError::BadConfig(format!(
                        "linear expects {k_in} features, activation has {cur_flat}"
                    )));
                }
                // Ring weight as [out, in] (transposed for column input).
                let wt = weight.transpose()?;
                let w_ring = RingMatrix::from_vec(fp.encode_tensor(&wt), out, k_in)?;
                let (corr_c, corr_s) = dealer.linear_corr(&w_ring, 1)?;
                let scale2 = fp.scale() * fp.scale();
                let bias2f: Vec<u64> =
                    bias.as_slice().iter().map(|&b| (b * scale2).round() as i64 as u64).collect();
                counts.linear_in_elems.push(k_in);
                counts.linear_out_elems.push(out);
                counts.macs += (k_in * out) as u64;
                steps.push(Step::Fc { k: k_in, out });
                cmats.push(ClientMat::Lin(corr_c));
                smats.push(ServerMat::Lin { w: w_ring, bias2f, corr: corr_s });
                cur_chw = None;
                cur_flat = out;
            }
            LayerSpec::Relu => {
                let n = cur_flat;
                counts.relu_elems += n;
                steps.push(Step::Relu { n });
                match cfg.backend {
                    PiBackend::Delphi => {
                        let ands_per_relu =
                            c2pi_mpc::gc::relu_masked_circuit(1, 64).and_count() as u64;
                        let mut snd = Vec::new();
                        let mut rcv = Vec::new();
                        for chunk in chunks_of(n, cfg.gc_chunk) {
                            let (s, r) = dealer.base_ots(KAPPA);
                            snd.push(s);
                            rcv.push(r);
                            counts.and_gates += chunk as u64 * ands_per_relu;
                        }
                        cmats.push(ClientMat::GcNl(rcv));
                        smats.push(ServerMat::GcNl(snd));
                    }
                    PiBackend::Cheetah => {
                        let need = n * drelu_bit_triples(63);
                        counts.bit_triples += need as u64;
                        let (b0, b1) = dealer.bit_triples(need);
                        let (ta0, ta1) = dealer.beaver_triples(n);
                        let (tb0, tb1) = dealer.beaver_triples(n);
                        cmats.push(ClientMat::IntNl(vec![(b0, ta0, tb0)]));
                        smats.push(ServerMat::IntNl(vec![(b1, ta1, tb1)]));
                    }
                }
            }
            LayerSpec::MaxPool2d { window, stride } => {
                let (cc, hh, ww) = cur_chw
                    .ok_or_else(|| PiError::BadConfig("pool after flatten".into()))?;
                if *window != 2 || *stride != 2 || hh % 2 != 0 || ww % 2 != 0 {
                    return Err(PiError::BadConfig(
                        "secure max pooling supports 2x2 stride-2 on even sizes".into(),
                    ));
                }
                let n_w = cc * (hh / 2) * (ww / 2);
                counts.pool_windows += n_w;
                steps.push(Step::MaxPool { c: cc, h: hh, w: ww });
                match cfg.backend {
                    PiBackend::Delphi => {
                        let ands_per_window =
                            c2pi_mpc::gc::maxpool4_masked_circuit(1, 64).and_count() as u64;
                        let mut snd = Vec::new();
                        let mut rcv = Vec::new();
                        for chunk in chunks_of(n_w, cfg.gc_chunk / 4 + 1) {
                            let (s, r) = dealer.base_ots(KAPPA);
                            snd.push(s);
                            rcv.push(r);
                            counts.and_gates += chunk as u64 * ands_per_window;
                        }
                        cmats.push(ClientMat::GcNl(rcv));
                        smats.push(ServerMat::GcNl(snd));
                    }
                    PiBackend::Cheetah => {
                        let mut stages_c = Vec::new();
                        let mut stages_s = Vec::new();
                        for _ in 0..3 {
                            let need = n_w * drelu_bit_triples(63);
                            counts.bit_triples += need as u64;
                            let (b0, b1) = dealer.bit_triples(need);
                            let (ta0, ta1) = dealer.beaver_triples(n_w);
                            let (tb0, tb1) = dealer.beaver_triples(n_w);
                            stages_c.push((b0, ta0, tb0));
                            stages_s.push((b1, ta1, tb1));
                        }
                        cmats.push(ClientMat::IntNl(stages_c));
                        smats.push(ServerMat::IntNl(stages_s));
                    }
                }
                cur_chw = Some((cc, hh / 2, ww / 2));
                cur_flat = cc * (hh / 2) * (ww / 2);
            }
            LayerSpec::AvgPool2d { window, stride } => {
                let (cc, hh, ww) = cur_chw
                    .ok_or_else(|| PiError::BadConfig("pool after flatten".into()))?;
                if hh < *window || ww < *window {
                    return Err(PiError::BadConfig("average pool window too large".into()));
                }
                let oh = (hh - window) / stride + 1;
                let ow = (ww - window) / stride + 1;
                steps.push(Step::AvgPool { c: cc, h: hh, w: ww, window: *window, stride: *stride });
                cmats.push(ClientMat::None);
                smats.push(ServerMat::None);
                cur_chw = Some((cc, oh, ow));
                cur_flat = cc * oh * ow;
            }
            LayerSpec::Flatten => {
                steps.push(Step::Flatten);
                cmats.push(ClientMat::None);
                smats.push(ServerMat::None);
                cur_chw = None;
            }
            LayerSpec::Affine { scale, shift } => {
                let (cc, hh, ww) = cur_chw
                    .ok_or_else(|| PiError::BadConfig("affine after flatten".into()))?;
                if scale.len() != cc || shift.len() != cc {
                    return Err(PiError::BadConfig("affine channel mismatch".into()));
                }
                let n = cc * hh * ww;
                // Broadcast per-channel scale/shift over the plane.
                let plane = hh * ww;
                let mut scale_ring = Vec::with_capacity(n);
                let mut shift2f = Vec::with_capacity(n);
                let scale2 = fp.scale() * fp.scale();
                for ch in 0..cc {
                    let s_enc = fp.encode(scale[ch]);
                    let t_enc = (shift[ch] * scale2).round() as i64 as u64;
                    for _ in 0..plane {
                        scale_ring.push(s_enc);
                        shift2f.push(t_enc);
                    }
                }
                counts.linear_in_elems.push(n);
                counts.linear_out_elems.push(n);
                counts.macs += n as u64;
                let (corr_c, corr_s) = dealer.affine_corr(&scale_ring);
                let _ = n;
                steps.push(Step::Affine);
                cmats.push(ClientMat::Affine(corr_c));
                smats.push(ServerMat::Affine { scale: scale_ring, shift2f, corr: corr_s });
            }
            LayerSpec::Unsupported(d) => return Err(PiError::UnsupportedLayer(d.clone())),
        }
    }
    let out_dims: Vec<usize> = match cur_chw {
        Some((cc, hh, ww)) => vec![1, cc, hh, ww],
        None => vec![1, cur_flat],
    };
    // ---- online phase: two real threads over a counted channel ----
    let (cep, sep, counter) = channel_pair();
    let x_owned = x.clone();
    let steps_s = steps.clone();
    let start = Instant::now();
    let (client_res, server_res) = std::thread::scope(|scope| {
        let server = scope.spawn(move || server_thread(&sep, &steps_s, smats, cfg));
        let client = client_thread(&cep, &steps, cmats, &x_owned, cfg);
        let server = server.join().map_err(|_| PiError::PartyPanic("server"));
        (client, server)
    });
    let online_seconds = start.elapsed().as_secs_f64();
    let client_share = client_res?;
    let server_share = server_res??;
    let online = counter.snapshot();
    let model = cfg.backend.cost_model();
    let offline = model.offline_traffic(&counts);
    let offline_seconds = model.offline_seconds(&counts);
    Ok(PiOutcome {
        client_share,
        server_share,
        dims: out_dims,
        report: PiReport {
            backend: cfg.backend.name(),
            online,
            offline,
            online_seconds,
            offline_seconds,
            counts,
        },
    })
}

fn avg_pool_share(
    share: &ShareVec,
    c: usize,
    h: usize,
    w: usize,
    window: usize,
    stride: usize,
    is_client: bool,
    fp: FixedPoint,
) -> ShareVec {
    let oh = (h - window) / stride + 1;
    let ow = (w - window) / stride + 1;
    let coeff = fp.encode(1.0 / (window * window) as f32);
    let mut out = Vec::with_capacity(c * oh * ow);
    for ch in 0..c {
        let plane = ch * h * w;
        for oy in 0..oh {
            for ox in 0..ow {
                let mut acc = 0u64;
                for ky in 0..window {
                    for kx in 0..window {
                        acc = acc.wrapping_add(
                            share.as_raw()[plane + (oy * stride + ky) * w + ox * stride + kx],
                        );
                    }
                }
                out.push(acc.wrapping_mul(coeff));
            }
        }
    }
    truncate_share(&ShareVec::from_raw(out), is_client, fp)
}

fn gather(share: &ShareVec, idx: &[[usize; 4]]) -> ShareVec {
    let mut out = Vec::with_capacity(idx.len() * 4);
    for quad in idx {
        for &i in quad {
            out.push(share.as_raw()[i]);
        }
    }
    ShareVec::from_raw(out)
}

fn split_quads(share: &ShareVec) -> [ShareVec; 4] {
    let n = share.len() / 4;
    let mut parts: [Vec<u64>; 4] = [
        Vec::with_capacity(n),
        Vec::with_capacity(n),
        Vec::with_capacity(n),
        Vec::with_capacity(n),
    ];
    for (i, &v) in share.as_raw().iter().enumerate() {
        parts[i % 4].push(v);
    }
    let [a, b, c, d] = parts;
    [
        ShareVec::from_raw(a),
        ShareVec::from_raw(b),
        ShareVec::from_raw(c),
        ShareVec::from_raw(d),
    ]
}

fn client_thread(
    ep: &Endpoint,
    steps: &[Step],
    mats: Vec<ClientMat>,
    x: &Tensor,
    cfg: &PiConfig,
) -> Result<ShareVec> {
    let fp = cfg.fixed;
    // Share the input: keep x0, send x1.
    let secret = fp.encode_tensor(x);
    let mut prg = Prg::from_u64(cfg.dealer_seed ^ 0xC11E_57A9);
    let (x0, x1) = share_secret(&secret, &mut prg);
    ep.send_u64s(x1.as_raw())?;
    let mut cur = x0;
    for (step, mat) in steps.iter().zip(mats.into_iter()) {
        match (step, mat) {
            (Step::Conv { c, h, w, geom, oc: _ }, ClientMat::Lin(corr)) => {
                let cols = im2col_ring(cur.as_raw(), *c, *h, *w, *geom)?;
                let y = linear_client(ep, &cols, &corr)?;
                cur = truncate_share(&ShareVec::from_raw(y.into_vec()), true, fp);
            }
            (Step::Fc { k, out: _ }, ClientMat::Lin(corr)) => {
                let xm = RingMatrix::from_vec(cur.as_raw().to_vec(), *k, 1)?;
                let y = linear_client(ep, &xm, &corr)?;
                cur = truncate_share(&ShareVec::from_raw(y.into_vec()), true, fp);
            }
            (Step::Relu { n }, ClientMat::GcNl(bases)) => {
                let mut out = Vec::with_capacity(*n);
                let mut off = 0usize;
                for (chunk, base) in chunks_of(*n, cfg.gc_chunk).into_iter().zip(bases.iter()) {
                    let part = ShareVec::from_raw(cur.as_raw()[off..off + chunk].to_vec());
                    out.extend(gc_relu_evaluator(ep, &part, base)?.into_raw());
                    off += chunk;
                }
                cur = ShareVec::from_raw(out);
            }
            (Step::Relu { n: _ }, ClientMat::IntNl(mut stages)) => {
                let (mut bits, ta, tb) = stages.remove(0);
                cur = relu_interactive(ep, true, &cur, &mut bits, &ta, &tb)?;
            }
            (Step::MaxPool { c, h, w }, ClientMat::GcNl(bases)) => {
                let idx = pool_windows(*c, *h, *w);
                let gathered = gather(&cur, &idx);
                let n_w = idx.len();
                let mut out = Vec::with_capacity(n_w);
                let mut off = 0usize;
                for (chunk, base) in
                    chunks_of(n_w, cfg.gc_chunk / 4 + 1).into_iter().zip(bases.iter())
                {
                    let part =
                        ShareVec::from_raw(gathered.as_raw()[off * 4..(off + chunk) * 4].to_vec());
                    out.extend(gc_maxpool4_evaluator(ep, &part, base)?.into_raw());
                    off += chunk;
                }
                cur = ShareVec::from_raw(out);
            }
            (Step::MaxPool { c, h, w }, ClientMat::IntNl(mut stages)) => {
                let idx = pool_windows(*c, *h, *w);
                let [a, b, cc, d] = split_quads(&gather(&cur, &idx));
                let (mut bt1, ta1, tb1) = stages.remove(0);
                let m1 = max_interactive(ep, true, &a, &b, &mut bt1, &ta1, &tb1)?;
                let (mut bt2, ta2, tb2) = stages.remove(0);
                let m2 = max_interactive(ep, true, &cc, &d, &mut bt2, &ta2, &tb2)?;
                let (mut bt3, ta3, tb3) = stages.remove(0);
                cur = max_interactive(ep, true, &m1, &m2, &mut bt3, &ta3, &tb3)?;
            }
            (Step::AvgPool { c, h, w, window, stride }, ClientMat::None) => {
                cur = avg_pool_share(&cur, *c, *h, *w, *window, *stride, true, fp);
            }
            (Step::Flatten, ClientMat::None) => {}
            (Step::Affine, ClientMat::Affine(corr)) => {
                let y = affine_client(ep, &cur, &corr)?;
                cur = truncate_share(&y, true, fp);
            }
            _ => return Err(PiError::BadConfig("plan/material mismatch (client)".into())),
        }
    }
    Ok(cur)
}

fn server_thread(
    ep: &Endpoint,
    steps: &[Step],
    mats: Vec<ServerMat>,
    cfg: &PiConfig,
) -> Result<ShareVec> {
    let fp = cfg.fixed;
    let mut prg = Prg::from_u64(cfg.dealer_seed ^ 0x5E2F_E27A);
    let mut cur = ShareVec::from_raw(ep.recv_u64s()?);
    for (step, mat) in steps.iter().zip(mats.into_iter()) {
        match (step, mat) {
            (Step::Conv { c, h, w, geom, oc }, ServerMat::Lin { w: w_ring, bias2f, corr }) => {
                let cols = im2col_ring(cur.as_raw(), *c, *h, *w, *geom)?;
                let mut y = linear_server(ep, &w_ring, &cols, &corr)?;
                let (oh_ow, _) = (y.cols(), ());
                for o in 0..*oc {
                    let b = bias2f[o];
                    for v in &mut y.as_mut_slice()[o * oh_ow..(o + 1) * oh_ow] {
                        *v = v.wrapping_add(b);
                    }
                }
                cur = truncate_share(&ShareVec::from_raw(y.into_vec()), false, fp);
            }
            (Step::Fc { k, out }, ServerMat::Lin { w: w_ring, bias2f, corr }) => {
                let xm = RingMatrix::from_vec(cur.as_raw().to_vec(), *k, 1)?;
                let mut y = linear_server(ep, &w_ring, &xm, &corr)?;
                for o in 0..*out {
                    y.as_mut_slice()[o] = y.as_slice()[o].wrapping_add(bias2f[o]);
                }
                cur = truncate_share(&ShareVec::from_raw(y.into_vec()), false, fp);
            }
            (Step::Relu { n }, ServerMat::GcNl(bases)) => {
                let mut out = Vec::with_capacity(*n);
                let mut off = 0usize;
                for (chunk, base) in chunks_of(*n, cfg.gc_chunk).into_iter().zip(bases.iter()) {
                    let part = ShareVec::from_raw(cur.as_raw()[off..off + chunk].to_vec());
                    out.extend(gc_relu_garbler(ep, &part, base, &mut prg)?.into_raw());
                    off += chunk;
                }
                cur = ShareVec::from_raw(out);
            }
            (Step::Relu { n: _ }, ServerMat::IntNl(mut stages)) => {
                let (mut bits, ta, tb) = stages.remove(0);
                cur = relu_interactive(ep, false, &cur, &mut bits, &ta, &tb)?;
            }
            (Step::MaxPool { c, h, w }, ServerMat::GcNl(bases)) => {
                let idx = pool_windows(*c, *h, *w);
                let gathered = gather(&cur, &idx);
                let n_w = idx.len();
                let mut out = Vec::with_capacity(n_w);
                let mut off = 0usize;
                for (chunk, base) in
                    chunks_of(n_w, cfg.gc_chunk / 4 + 1).into_iter().zip(bases.iter())
                {
                    let part =
                        ShareVec::from_raw(gathered.as_raw()[off * 4..(off + chunk) * 4].to_vec());
                    out.extend(gc_maxpool4_garbler(ep, &part, base, &mut prg)?.into_raw());
                    off += chunk;
                }
                cur = ShareVec::from_raw(out);
            }
            (Step::MaxPool { c, h, w }, ServerMat::IntNl(mut stages)) => {
                let idx = pool_windows(*c, *h, *w);
                let [a, b, cc, d] = split_quads(&gather(&cur, &idx));
                let (mut bt1, ta1, tb1) = stages.remove(0);
                let m1 = max_interactive(ep, false, &a, &b, &mut bt1, &ta1, &tb1)?;
                let (mut bt2, ta2, tb2) = stages.remove(0);
                let m2 = max_interactive(ep, false, &cc, &d, &mut bt2, &ta2, &tb2)?;
                let (mut bt3, ta3, tb3) = stages.remove(0);
                cur = max_interactive(ep, false, &m1, &m2, &mut bt3, &ta3, &tb3)?;
            }
            (Step::AvgPool { c, h, w, window, stride }, ServerMat::None) => {
                cur = avg_pool_share(&cur, *c, *h, *w, *window, *stride, false, fp);
            }
            (Step::Flatten, ServerMat::None) => {}
            (Step::Affine, ServerMat::Affine { scale, shift2f, corr }) => {
                let y = affine_server(ep, &scale, &cur, &corr)?;
                let shifted: Vec<u64> = y
                    .as_raw()
                    .iter()
                    .zip(shift2f.iter())
                    .map(|(&v, &s)| v.wrapping_add(s))
                    .collect();
                cur = truncate_share(&ShareVec::from_raw(shifted), false, fp);
            }
            _ => return Err(PiError::BadConfig("plan/material mismatch (server)".into())),
        }
    }
    Ok(cur)
}

#[cfg(test)]
mod tests {
    use super::*;
    use c2pi_nn::layers::{AvgPool2d, BatchNorm2d, Conv2d, Flatten, Linear, MaxPool2d, Relu};
    use c2pi_nn::Layer;

    fn tiny_prefix() -> Sequential {
        let mut s = Sequential::new();
        s.push(Conv2d::new(1, 3, 3, 1, 1, 1, 1));
        s.push(Relu::new());
        s.push(MaxPool2d::new(2, 2));
        s.push(Conv2d::new(3, 4, 3, 1, 1, 1, 2));
        s.push(Relu::new());
        s
    }

    fn run_both(seq: &mut Sequential, x: &Tensor, backend: PiBackend) -> (Tensor, Tensor, PiReport) {
        let plain = seq.forward(x, false).unwrap();
        seq.clear_cache();
        let cfg = PiConfig { backend, ..Default::default() };
        let outcome = run_prefix(&specs_of(seq), x, &cfg).unwrap();
        let secure = outcome.reconstruct(cfg.fixed).unwrap();
        (plain, secure, outcome.report)
    }

    fn assert_close(a: &Tensor, b: &Tensor, tol: f32) {
        assert_eq!(a.dims(), b.dims());
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((x - y).abs() < tol, "{x} vs {y}");
        }
    }

    #[test]
    fn cheetah_prefix_matches_plaintext() {
        let mut seq = tiny_prefix();
        let x = Tensor::rand_uniform(&[1, 1, 8, 8], -1.0, 1.0, 3);
        let (plain, secure, report) = run_both(&mut seq, &x, PiBackend::Cheetah);
        assert_close(&plain, &secure, 0.02);
        assert_eq!(report.backend, "cheetah");
        assert!(report.online.bytes_total() > 0);
        assert_eq!(report.counts.relu_elems, 3 * 8 * 8 + 4 * 4 * 4);
        assert_eq!(report.counts.pool_windows, 3 * 4 * 4);
    }

    #[test]
    fn delphi_prefix_matches_plaintext() {
        let mut seq = tiny_prefix();
        let x = Tensor::rand_uniform(&[1, 1, 8, 8], -1.0, 1.0, 4);
        let (plain, secure, report) = run_both(&mut seq, &x, PiBackend::Delphi);
        assert_close(&plain, &secure, 0.02);
        assert!(report.counts.and_gates > 0);
    }

    #[test]
    fn fc_and_flatten_and_avgpool_work() {
        let mut seq = Sequential::new();
        seq.push(Conv2d::new(1, 2, 3, 1, 1, 1, 5));
        seq.push(Relu::new());
        seq.push(AvgPool2d::new(2, 2));
        seq.push(Flatten::new());
        seq.push(Linear::new(2 * 4 * 4, 5, 6));
        let x = Tensor::rand_uniform(&[1, 1, 8, 8], -1.0, 1.0, 7);
        let (plain, secure, _) = run_both(&mut seq, &x, PiBackend::Cheetah);
        assert_close(&plain, &secure, 0.03);
    }

    #[test]
    fn batchnorm_affine_is_supported() {
        let mut seq = Sequential::new();
        seq.push(Conv2d::new(1, 2, 3, 1, 1, 1, 8));
        let mut bn = BatchNorm2d::new(2);
        // Train the BN so running stats are non-trivial.
        let warm = Tensor::rand_uniform(&[4, 2, 8, 8], -1.0, 2.0, 9);
        for _ in 0..30 {
            bn.forward(&warm, true).unwrap();
            bn.clear_cache();
        }
        seq.push(bn);
        seq.push(Relu::new());
        let x = Tensor::rand_uniform(&[1, 1, 8, 8], -1.0, 1.0, 10);
        let (plain, secure, _) = run_both(&mut seq, &x, PiBackend::Cheetah);
        assert_close(&plain, &secure, 0.05);
    }

    #[test]
    fn delphi_traffic_exceeds_cheetah() {
        let mut seq = tiny_prefix();
        let x = Tensor::rand_uniform(&[1, 1, 8, 8], -1.0, 1.0, 11);
        let (_, _, delphi) = run_both(&mut seq, &x, PiBackend::Delphi);
        let (_, _, cheetah) = run_both(&mut seq, &x, PiBackend::Cheetah);
        assert!(
            delphi.online.bytes_total() > 5 * cheetah.online.bytes_total(),
            "delphi {} vs cheetah {}",
            delphi.online.bytes_total(),
            cheetah.online.bytes_total()
        );
    }

    #[test]
    fn longer_prefix_costs_more() {
        let mut seq = tiny_prefix();
        let x = Tensor::rand_uniform(&[1, 1, 8, 8], -1.0, 1.0, 12);
        let cfg = PiConfig::default();
        let specs = specs_of(&seq);
        let short = run_prefix(&specs[..2], &x, &cfg).unwrap();
        let long = run_prefix(&specs, &x, &cfg).unwrap();
        assert!(long.report.online.bytes_total() > short.report.online.bytes_total());
        assert!(long.report.comm_mb() > short.report.comm_mb());
        let _ = seq.forward(&x, false).unwrap();
    }

    #[test]
    fn unsupported_layer_is_rejected() {
        let mut seq = Sequential::new();
        seq.push(c2pi_nn::layers::UpsampleNearest::new(2));
        let x = Tensor::rand_uniform(&[1, 1, 4, 4], -1.0, 1.0, 13);
        let err = run_prefix(&specs_of(&seq), &x, &PiConfig::default());
        assert!(matches!(err, Err(PiError::UnsupportedLayer(_))));
    }

    #[test]
    fn odd_pool_size_is_rejected() {
        let mut seq = Sequential::new();
        seq.push(MaxPool2d::new(3, 3));
        let x = Tensor::rand_uniform(&[1, 1, 9, 9], -1.0, 1.0, 14);
        let err = run_prefix(&specs_of(&seq), &x, &PiConfig::default());
        assert!(matches!(err, Err(PiError::BadConfig(_))));
    }
}
