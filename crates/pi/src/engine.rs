//! Engine configuration and the one-shot execution entry point.
//!
//! The engine's planning, offline and online machinery lives in
//! the private `plan` module and [`crate::session`]; protocol-specific behaviour
//! is dispatched through the [`crate::backend::PiBackendImpl`] trait, so
//! this module contains no backend-specific code. [`run_prefix`] is the
//! single-inference convenience wrapper (compile + preprocess + infer in
//! one call); serving systems should hold a
//! [`crate::session::PiSession`] instead and preprocess ahead of
//! traffic.

use crate::backend::PiBackendImpl;
use crate::cost::OfflineCostModel;
use crate::report::PiReport;
use crate::session::PiSession;
use crate::Result;
use c2pi_mpc::share::ShareVec;
use c2pi_mpc::FixedPoint;
use c2pi_nn::{LayerSpec, Sequential};
use c2pi_tensor::Tensor;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Which published system the engine emulates. This is the *registry
/// tag*; the behaviour lives behind [`PiBackendImpl`] and is resolved by
/// [`PiBackend::engine`]. Custom backends skip the enum entirely and
/// hand an `Arc<dyn PiBackendImpl>` to
/// [`PiSession::with_backend`](crate::session::PiSession::with_backend).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PiBackend {
    /// Delphi (Mishra et al., USENIX Security 2020): GC non-linearities,
    /// heavyweight HE offline.
    Delphi,
    /// Cheetah (Huang et al., USENIX Security 2022): comparison-based
    /// non-linearities with silent correlations, lean lattice linear
    /// layers.
    Cheetah,
}

impl PiBackend {
    /// Engine name for reports.
    pub fn name(&self) -> &'static str {
        self.engine().name()
    }

    /// Resolves the tag to its implementation (the registry lives in
    /// [`crate::backend`]).
    pub fn engine(&self) -> Arc<dyn PiBackendImpl> {
        crate::backend::resolve(*self)
    }

    /// The matching offline cost model.
    pub fn cost_model(&self) -> OfflineCostModel {
        self.engine().cost_model()
    }

    /// Resolves a backend tag from its report name (`delphi`,
    /// `cheetah`); `None` for anything else.
    ///
    /// ```
    /// use c2pi_pi::PiBackend;
    /// assert_eq!(PiBackend::by_name("cheetah"), Some(PiBackend::Cheetah));
    /// assert_eq!(PiBackend::by_name("gazelle"), None);
    /// ```
    pub fn by_name(name: &str) -> Option<Self> {
        match name {
            "delphi" => Some(PiBackend::Delphi),
            "cheetah" => Some(PiBackend::Cheetah),
            _ => None,
        }
    }
}

/// Engine configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PiConfig {
    /// Backend protocol suite.
    pub backend: PiBackend,
    /// Fixed-point format.
    pub fixed: FixedPoint,
    /// Master seed for the session's per-inference seed stream (dealer
    /// and protocol randomness fork from it).
    pub dealer_seed: u64,
    /// Parallel band size for garbled-circuit work: how many circuit
    /// items one worker garbles (offline) or evaluates (online) before
    /// the rayon fan-out hands out the next band. Purely a
    /// parallelism/memory knob — it never changes results or traffic.
    pub gc_chunk: usize,
}

impl Default for PiConfig {
    fn default() -> Self {
        PiConfig {
            backend: PiBackend::Cheetah,
            fixed: FixedPoint::default(),
            dealer_seed: 7,
            gc_chunk: 1024,
        }
    }
}

/// Result of running the crypto prefix: both parties' shares of the
/// boundary activation plus the cost report.
#[derive(Debug, Clone)]
pub struct PiOutcome {
    /// Client's additive share of the boundary activation.
    pub client_share: ShareVec,
    /// Server's additive share of the boundary activation.
    pub server_share: ShareVec,
    /// Public shape of the boundary activation.
    pub dims: Vec<usize>,
    /// Cost profile of the run.
    pub report: PiReport,
}

impl PiOutcome {
    /// Reconstructs the boundary activation (testing / the C2PI reveal
    /// step after the client noises its share).
    ///
    /// # Errors
    ///
    /// Returns a tensor error when shares and shape disagree.
    pub fn reconstruct(&self, fp: FixedPoint) -> Result<Tensor> {
        let raw = c2pi_mpc::share::reconstruct(&self.client_share, &self.server_share);
        Ok(fp.decode_tensor(&raw, &self.dims)?)
    }
}

/// Extracts the protocol-facing specs of a layer stack.
pub fn specs_of(seq: &Sequential) -> Vec<LayerSpec> {
    seq.layers().iter().map(|l| l.spec()).collect()
}

/// Runs the crypto-layer prefix of a model under the configured backend,
/// as a one-shot session (compile + preprocess one material set + one
/// online inference).
///
/// `x` must be a single image `[1, c, h, w]`; the specs are the prefix
/// layers in order (see [`specs_of`]).
///
/// # Errors
///
/// Returns [`crate::PiError::UnsupportedLayer`] for layers without a
/// secure execution, [`crate::PiError::BadConfig`] for shape problems,
/// and protocol errors from the underlying MPC stack.
pub fn run_prefix(specs: &[LayerSpec], x: &Tensor, cfg: &PiConfig) -> Result<PiOutcome> {
    let (_, c, h, w) = x.shape().as_nchw()?;
    let mut session = PiSession::new(specs, [c, h, w], *cfg)?;
    session.infer(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use c2pi_nn::layers::{AvgPool2d, BatchNorm2d, Conv2d, Flatten, Linear, MaxPool2d, Relu};
    use c2pi_nn::Layer;

    fn tiny_prefix() -> Sequential {
        let mut s = Sequential::new();
        s.push(Conv2d::new(1, 3, 3, 1, 1, 1, 1));
        s.push(Relu::new());
        s.push(MaxPool2d::new(2, 2));
        s.push(Conv2d::new(3, 4, 3, 1, 1, 1, 2));
        s.push(Relu::new());
        s
    }

    fn run_both(
        seq: &mut Sequential,
        x: &Tensor,
        backend: PiBackend,
    ) -> (Tensor, Tensor, PiReport) {
        let plain = seq.forward(x, false).unwrap();
        seq.clear_cache();
        let cfg = PiConfig { backend, ..Default::default() };
        let outcome = run_prefix(&specs_of(seq), x, &cfg).unwrap();
        let secure = outcome.reconstruct(cfg.fixed).unwrap();
        (plain, secure, outcome.report)
    }

    fn assert_close(a: &Tensor, b: &Tensor, tol: f32) {
        assert_eq!(a.dims(), b.dims());
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((x - y).abs() < tol, "{x} vs {y}");
        }
    }

    #[test]
    fn cheetah_prefix_matches_plaintext() {
        let mut seq = tiny_prefix();
        let x = Tensor::rand_uniform(&[1, 1, 8, 8], -1.0, 1.0, 3);
        let (plain, secure, report) = run_both(&mut seq, &x, PiBackend::Cheetah);
        assert_close(&plain, &secure, 0.02);
        assert_eq!(report.backend, "cheetah");
        assert!(report.online.bytes_total() > 0);
        assert_eq!(report.counts.relu_elems, 3 * 8 * 8 + 4 * 4 * 4);
        assert_eq!(report.counts.pool_windows, 3 * 4 * 4);
    }

    #[test]
    fn delphi_prefix_matches_plaintext() {
        let mut seq = tiny_prefix();
        let x = Tensor::rand_uniform(&[1, 1, 8, 8], -1.0, 1.0, 4);
        let (plain, secure, report) = run_both(&mut seq, &x, PiBackend::Delphi);
        assert_close(&plain, &secure, 0.02);
        assert!(report.counts.and_gates > 0);
    }

    #[test]
    fn fc_and_flatten_and_avgpool_work() {
        let mut seq = Sequential::new();
        seq.push(Conv2d::new(1, 2, 3, 1, 1, 1, 5));
        seq.push(Relu::new());
        seq.push(AvgPool2d::new(2, 2));
        seq.push(Flatten::new());
        seq.push(Linear::new(2 * 4 * 4, 5, 6));
        let x = Tensor::rand_uniform(&[1, 1, 8, 8], -1.0, 1.0, 7);
        let (plain, secure, _) = run_both(&mut seq, &x, PiBackend::Cheetah);
        assert_close(&plain, &secure, 0.03);
    }

    #[test]
    fn batchnorm_affine_is_supported() {
        let mut seq = Sequential::new();
        seq.push(Conv2d::new(1, 2, 3, 1, 1, 1, 8));
        let mut bn = BatchNorm2d::new(2);
        // Train the BN so running stats are non-trivial.
        let warm = Tensor::rand_uniform(&[4, 2, 8, 8], -1.0, 2.0, 9);
        for _ in 0..30 {
            bn.forward(&warm, true).unwrap();
            bn.clear_cache();
        }
        seq.push(bn);
        seq.push(Relu::new());
        let x = Tensor::rand_uniform(&[1, 1, 8, 8], -1.0, 1.0, 10);
        let (plain, secure, _) = run_both(&mut seq, &x, PiBackend::Cheetah);
        assert_close(&plain, &secure, 0.05);
    }

    #[test]
    fn delphi_traffic_exceeds_cheetah() {
        // The paper's Table-II asymmetry. Since the offline-garbling
        // refactor Delphi's tables ship in the offline phase, so the
        // gap lives in *total* traffic; online, Delphi still pays the
        // per-bit label transfer Cheetah avoids. Seed-compressed
        // dealing removed the garbled tables from the dealt wire bytes
        // on both sides, so the remaining gap is the HE ciphertext
        // asymmetry (~4× at this shape) — pin >3×.
        let mut seq = tiny_prefix();
        let x = Tensor::rand_uniform(&[1, 1, 8, 8], -1.0, 1.0, 11);
        let (_, _, delphi) = run_both(&mut seq, &x, PiBackend::Delphi);
        let (_, _, cheetah) = run_both(&mut seq, &x, PiBackend::Cheetah);
        assert!(
            delphi.traffic_total().bytes_total() > 3 * cheetah.traffic_total().bytes_total(),
            "delphi {} vs cheetah {}",
            delphi.traffic_total().bytes_total(),
            cheetah.traffic_total().bytes_total()
        );
        assert!(
            delphi.online.bytes_total() > cheetah.online.bytes_total(),
            "delphi online {} vs cheetah online {}",
            delphi.online.bytes_total(),
            cheetah.online.bytes_total()
        );
    }

    #[test]
    fn longer_prefix_costs_more() {
        let mut seq = tiny_prefix();
        let x = Tensor::rand_uniform(&[1, 1, 8, 8], -1.0, 1.0, 12);
        let cfg = PiConfig::default();
        let specs = specs_of(&seq);
        let short = run_prefix(&specs[..2], &x, &cfg).unwrap();
        let long = run_prefix(&specs, &x, &cfg).unwrap();
        assert!(long.report.online.bytes_total() > short.report.online.bytes_total());
        assert!(long.report.comm_mb() > short.report.comm_mb());
        let _ = seq.forward(&x, false).unwrap();
    }

    #[test]
    fn unsupported_layer_is_rejected() {
        let mut seq = Sequential::new();
        seq.push(c2pi_nn::layers::UpsampleNearest::new(2));
        let x = Tensor::rand_uniform(&[1, 1, 4, 4], -1.0, 1.0, 13);
        let err = run_prefix(&specs_of(&seq), &x, &PiConfig::default());
        assert!(matches!(err, Err(crate::PiError::UnsupportedLayer(_))));
    }

    #[test]
    fn odd_pool_size_is_rejected() {
        let mut seq = Sequential::new();
        seq.push(MaxPool2d::new(3, 3));
        let x = Tensor::rand_uniform(&[1, 1, 9, 9], -1.0, 1.0, 14);
        let err = run_prefix(&specs_of(&seq), &x, &PiConfig::default());
        assert!(matches!(err, Err(crate::PiError::BadConfig(_))));
    }
}
