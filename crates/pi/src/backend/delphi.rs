//! The Delphi-style backend (Mishra et al., USENIX Security 2020):
//! garbled-circuit non-linearities with the garbling done **offline**
//! ([`c2pi_mpc::gcpre`]) — `prepare_*` garbles the masked circuits and
//! fixes every input-independent label during preprocessing, so the
//! online phase is one `δ`/label round trip per layer plus local
//! evaluation. Heavyweight HE offline (plus the garbled tables and the
//! session OT extension's label transfers) modelled by
//! [`OfflineCostModel::delphi`].

use super::{check_batch_arity, downcast_material, NlMaterial, PiBackendImpl};
use crate::cost::OfflineCostModel;
use crate::engine::PiConfig;
use crate::report::OpCounts;
use crate::Result;
use c2pi_mpc::beaver::linear_server_batch;
use c2pi_mpc::dealer::{Dealer, LinearCorrServer};
use c2pi_mpc::gc::UNIT_BITS;
use c2pi_mpc::gcpre::{
    pre_gc_evaluator, pre_gc_garbler, pre_gc_garbler_batch, pregarble, MaskedOp, PreGarbledClient,
    PreGarbledServer,
};
use c2pi_mpc::ot::KAPPA;
use c2pi_mpc::prg::Prg;
use c2pi_mpc::ring::RingMatrix;
use c2pi_mpc::share::ShareVec;
use c2pi_transport::{Channel, Side};

/// Client (evaluator) half of one offline-garbled non-linear layer.
struct GcClient {
    mat: PreGarbledClient,
}

/// Server (garbler) half of the same.
struct GcServer {
    mat: PreGarbledServer,
}

/// The Delphi-style backend. Stateless: all per-inference state lives in
/// the prepared material.
#[derive(Debug, Clone, Copy, Default)]
pub struct Delphi;

impl Delphi {
    /// Garbles one layer's masked circuits offline and accounts the
    /// AND gates plus the extension-transferred evaluator labels.
    fn prepare_layer(
        &self,
        dealer: &mut Dealer,
        op: MaskedOp,
        items: usize,
        cfg: &PiConfig,
        counts: &mut OpCounts,
    ) -> (NlMaterial, NlMaterial) {
        counts.and_gates += (items * op.ands_per_item()) as u64;
        counts.xor_gates += (items * op.xors_per_item()) as u64;
        // The evaluator's masked-input labels ride the session OT
        // extension (one transfer per input bit).
        counts.ext_ots += (items * op.in_elems() * UNIT_BITS) as u64;
        let mut prg = dealer.fork_prg();
        let (cmat, smat) = pregarble(op, items, &mut prg, cfg.gc_chunk.max(1));
        // The pre-garbled halves are drawn from a forked PRG, so the
        // dealer can't see their size itself — report it for the
        // seed-vs-expanded accounting.
        dealer.note_expanded(cmat.expanded_bytes() + smat.expanded_bytes());
        (Box::new(GcClient { mat: cmat }), Box::new(GcServer { mat: smat }))
    }

    /// Shared online path of both non-linear hooks: one `δ`/label round
    /// trip, then parallel evaluation on the client.
    fn nl_online(
        &self,
        ep: &dyn Channel,
        side: Side,
        share: &ShareVec,
        material: NlMaterial,
        cfg: &PiConfig,
    ) -> Result<ShareVec> {
        match side {
            Side::Client => {
                let mat = downcast_material::<GcClient>(material, "delphi")?;
                Ok(pre_gc_evaluator(ep, &mat.mat, share, cfg.gc_chunk.max(1))?)
            }
            Side::Server => {
                let mat = downcast_material::<GcServer>(material, "delphi")?;
                Ok(pre_gc_garbler(ep, &mat.mat, share)?)
            }
        }
    }

    /// Batched variant of [`Self::nl_online`]. On the garbler (server)
    /// side all `k` members' label selections run in one fused parallel
    /// region ([`pre_gc_garbler_batch`]); the evaluator side stays a
    /// per-member loop — clients are separate processes and never batch.
    fn nl_online_batch(
        &self,
        eps: &[&dyn Channel],
        side: Side,
        shares: &[ShareVec],
        materials: Vec<NlMaterial>,
        cfg: &PiConfig,
    ) -> Result<Vec<ShareVec>> {
        check_batch_arity("delphi nl", eps.len(), shares.len(), materials.len(), eps.len())?;
        match side {
            Side::Client => {
                let mut out = Vec::with_capacity(eps.len());
                for ((ep, share), material) in eps.iter().zip(shares).zip(materials) {
                    let mat = downcast_material::<GcClient>(material, "delphi")?;
                    out.push(pre_gc_evaluator(*ep, &mat.mat, share, cfg.gc_chunk.max(1))?);
                }
                Ok(out)
            }
            Side::Server => {
                let mats: Vec<Box<GcServer>> = materials
                    .into_iter()
                    .map(|m| downcast_material::<GcServer>(m, "delphi"))
                    .collect::<Result<_>>()?;
                let mat_refs: Vec<&PreGarbledServer> = mats.iter().map(|m| &m.mat).collect();
                let share_refs: Vec<&ShareVec> = shares.iter().collect();
                Ok(pre_gc_garbler_batch(eps, &mat_refs, &share_refs)?)
            }
        }
    }
}

impl PiBackendImpl for Delphi {
    fn name(&self) -> &'static str {
        "delphi"
    }

    fn cost_model(&self) -> OfflineCostModel {
        OfflineCostModel::delphi()
    }

    fn prepare_session(&self, dealer: &mut Dealer, counts: &mut OpCounts) {
        // One KAPPA-sized base-OT set per inference; the offline label
        // transfers of every layer extend from it.
        let _ = dealer.base_ots(KAPPA);
        counts.base_ots += KAPPA as u64;
    }

    fn prepare_relu(
        &self,
        dealer: &mut Dealer,
        n: usize,
        cfg: &PiConfig,
        counts: &mut OpCounts,
    ) -> (NlMaterial, NlMaterial) {
        self.prepare_layer(dealer, MaskedOp::Relu, n, cfg, counts)
    }

    fn prepare_maxpool(
        &self,
        dealer: &mut Dealer,
        windows: usize,
        cfg: &PiConfig,
        counts: &mut OpCounts,
    ) -> (NlMaterial, NlMaterial) {
        self.prepare_layer(dealer, MaskedOp::Maxpool4, windows, cfg, counts)
    }

    fn relu_online(
        &self,
        ep: &dyn Channel,
        side: Side,
        share: &ShareVec,
        material: NlMaterial,
        cfg: &PiConfig,
        _prg: &mut Prg,
    ) -> Result<ShareVec> {
        self.nl_online(ep, side, share, material, cfg)
    }

    fn maxpool_online(
        &self,
        ep: &dyn Channel,
        side: Side,
        quads: &ShareVec,
        material: NlMaterial,
        cfg: &PiConfig,
        _prg: &mut Prg,
    ) -> Result<ShareVec> {
        self.nl_online(ep, side, quads, material, cfg)
    }

    fn relu_online_batch(
        &self,
        eps: &[&dyn Channel],
        side: Side,
        shares: &[ShareVec],
        materials: Vec<NlMaterial>,
        cfg: &PiConfig,
        _prgs: &mut [Prg],
    ) -> Result<Vec<ShareVec>> {
        self.nl_online_batch(eps, side, shares, materials, cfg)
    }

    fn maxpool_online_batch(
        &self,
        eps: &[&dyn Channel],
        side: Side,
        quads: &[ShareVec],
        materials: Vec<NlMaterial>,
        cfg: &PiConfig,
        _prgs: &mut [Prg],
    ) -> Result<Vec<ShareVec>> {
        self.nl_online_batch(eps, side, quads, materials, cfg)
    }

    fn linear_online_server_batch(
        &self,
        eps: &[&dyn Channel],
        w: &RingMatrix,
        x1s: &[RingMatrix],
        corrs: &[&LinearCorrServer],
    ) -> Result<Vec<RingMatrix>> {
        Ok(linear_server_batch(eps, w, x1s, corrs)?)
    }
}
