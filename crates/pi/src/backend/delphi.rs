//! The Delphi-style backend (Mishra et al., USENIX Security 2020):
//! garbled-circuit non-linearities prepared from base OTs, heavyweight
//! HE offline modelled by [`OfflineCostModel::delphi`].

use super::{chunks_of, downcast_material, NlMaterial, PiBackendImpl};
use crate::cost::OfflineCostModel;
use crate::engine::PiConfig;
use crate::report::OpCounts;
use crate::Result;
use c2pi_mpc::dealer::{BaseOtReceiver, BaseOtSender, Dealer};
use c2pi_mpc::ot::KAPPA;
use c2pi_mpc::prg::Prg;
use c2pi_mpc::relu::{
    gc_maxpool4_evaluator, gc_maxpool4_garbler, gc_relu_evaluator, gc_relu_garbler,
};
use c2pi_mpc::share::ShareVec;
use c2pi_transport::{Channel, Side};

/// Offline material for one GC non-linear layer, client (evaluator)
/// side: one base-OT set per circuit chunk.
struct GcClient {
    bases: Vec<BaseOtReceiver>,
}

/// Server (garbler) side of the same.
struct GcServer {
    bases: Vec<BaseOtSender>,
}

/// Max-pool chunks are a quarter of the ReLU chunk (each window feeds
/// four elements into its circuit).
fn maxpool_chunk(cfg: &PiConfig) -> usize {
    cfg.gc_chunk / 4 + 1
}

/// The Delphi-style backend. Stateless: all per-inference state lives in
/// the prepared material.
#[derive(Debug, Clone, Copy, Default)]
pub struct Delphi;

impl PiBackendImpl for Delphi {
    fn name(&self) -> &'static str {
        "delphi"
    }

    fn cost_model(&self) -> OfflineCostModel {
        OfflineCostModel::delphi()
    }

    fn prepare_relu(
        &self,
        dealer: &mut Dealer,
        n: usize,
        cfg: &PiConfig,
        counts: &mut OpCounts,
    ) -> (NlMaterial, NlMaterial) {
        let ands_per_relu = c2pi_mpc::gc::relu_masked_circuit(1, 64).and_count() as u64;
        let mut snd = Vec::new();
        let mut rcv = Vec::new();
        for chunk in chunks_of(n, cfg.gc_chunk) {
            let (s, r) = dealer.base_ots(KAPPA);
            snd.push(s);
            rcv.push(r);
            counts.and_gates += chunk as u64 * ands_per_relu;
        }
        (Box::new(GcClient { bases: rcv }), Box::new(GcServer { bases: snd }))
    }

    fn prepare_maxpool(
        &self,
        dealer: &mut Dealer,
        windows: usize,
        cfg: &PiConfig,
        counts: &mut OpCounts,
    ) -> (NlMaterial, NlMaterial) {
        let ands_per_window = c2pi_mpc::gc::maxpool4_masked_circuit(1, 64).and_count() as u64;
        let mut snd = Vec::new();
        let mut rcv = Vec::new();
        for chunk in chunks_of(windows, maxpool_chunk(cfg)) {
            let (s, r) = dealer.base_ots(KAPPA);
            snd.push(s);
            rcv.push(r);
            counts.and_gates += chunk as u64 * ands_per_window;
        }
        (Box::new(GcClient { bases: rcv }), Box::new(GcServer { bases: snd }))
    }

    fn relu_online(
        &self,
        ep: &dyn Channel,
        side: Side,
        share: &ShareVec,
        material: NlMaterial,
        cfg: &PiConfig,
        prg: &mut Prg,
    ) -> Result<ShareVec> {
        let n = share.len();
        let mut out = Vec::with_capacity(n);
        let mut off = 0usize;
        match side {
            Side::Client => {
                let mat = downcast_material::<GcClient>(material, "delphi")?;
                for (chunk, base) in chunks_of(n, cfg.gc_chunk).into_iter().zip(mat.bases.iter()) {
                    let part = ShareVec::from_raw(share.as_raw()[off..off + chunk].to_vec());
                    out.extend(gc_relu_evaluator(ep, &part, base)?.into_raw());
                    off += chunk;
                }
            }
            Side::Server => {
                let mat = downcast_material::<GcServer>(material, "delphi")?;
                for (chunk, base) in chunks_of(n, cfg.gc_chunk).into_iter().zip(mat.bases.iter()) {
                    let part = ShareVec::from_raw(share.as_raw()[off..off + chunk].to_vec());
                    out.extend(gc_relu_garbler(ep, &part, base, prg)?.into_raw());
                    off += chunk;
                }
            }
        }
        Ok(ShareVec::from_raw(out))
    }

    fn maxpool_online(
        &self,
        ep: &dyn Channel,
        side: Side,
        quads: &ShareVec,
        material: NlMaterial,
        cfg: &PiConfig,
        prg: &mut Prg,
    ) -> Result<ShareVec> {
        let windows = quads.len() / 4;
        let mut out = Vec::with_capacity(windows);
        let mut off = 0usize;
        match side {
            Side::Client => {
                let mat = downcast_material::<GcClient>(material, "delphi")?;
                for (chunk, base) in
                    chunks_of(windows, maxpool_chunk(cfg)).into_iter().zip(mat.bases.iter())
                {
                    let part =
                        ShareVec::from_raw(quads.as_raw()[off * 4..(off + chunk) * 4].to_vec());
                    out.extend(gc_maxpool4_evaluator(ep, &part, base)?.into_raw());
                    off += chunk;
                }
            }
            Side::Server => {
                let mat = downcast_material::<GcServer>(material, "delphi")?;
                for (chunk, base) in
                    chunks_of(windows, maxpool_chunk(cfg)).into_iter().zip(mat.bases.iter())
                {
                    let part =
                        ShareVec::from_raw(quads.as_raw()[off * 4..(off + chunk) * 4].to_vec());
                    out.extend(gc_maxpool4_garbler(ep, &part, base, prg)?.into_raw());
                    off += chunk;
                }
            }
        }
        Ok(ShareVec::from_raw(out))
    }
}
