//! The Cheetah-style backend (Huang et al., USENIX Security 2022):
//! comparison-based non-linearities consuming silent bit/Beaver triples,
//! with an online phase two orders of magnitude leaner than garbled
//! circuits; lean lattice offline modelled by
//! [`OfflineCostModel::cheetah`].

use super::{downcast_material, split_quads, NlMaterial, PiBackendImpl};
use crate::cost::OfflineCostModel;
use crate::engine::PiConfig;
use crate::report::OpCounts;
use crate::Result;
use c2pi_mpc::beaver::linear_server_batch;
use c2pi_mpc::dealer::{Dealer, LinearCorrServer, TripleShare};
use c2pi_mpc::ot::BitTriples;
use c2pi_mpc::prg::Prg;
use c2pi_mpc::relu::{drelu_bit_triples, max_interactive, relu_interactive};
use c2pi_mpc::ring::RingMatrix;
use c2pi_mpc::share::ShareVec;
use c2pi_transport::{Channel, Side};

/// One comparison stage's correlations: DReLU bit triples plus the two
/// Beaver triple sets the multiplexer consumes.
type Stage = (BitTriples, TripleShare, TripleShare);

/// Offline material for one comparison-based non-linear layer (one
/// stage for ReLU, three for the 4-way max tournament). Both parties
/// hold the same shape.
struct CmpMaterial {
    stages: Vec<Stage>,
}

/// The Cheetah-style backend. Stateless: all per-inference state lives
/// in the prepared material.
#[derive(Debug, Clone, Copy, Default)]
pub struct Cheetah;

fn stage_for(dealer: &mut Dealer, n: usize, counts: &mut OpCounts) -> (Stage, Stage) {
    let need = n * drelu_bit_triples(63);
    counts.bit_triples += need as u64;
    let (b0, b1) = dealer.bit_triples(need);
    let (ta0, ta1) = dealer.beaver_triples(n);
    let (tb0, tb1) = dealer.beaver_triples(n);
    ((b0, ta0, tb0), (b1, ta1, tb1))
}

impl PiBackendImpl for Cheetah {
    fn name(&self) -> &'static str {
        "cheetah"
    }

    fn cost_model(&self) -> OfflineCostModel {
        OfflineCostModel::cheetah()
    }

    fn prepare_session(&self, dealer: &mut Dealer, counts: &mut OpCounts) {
        // One KAPPA-sized base-OT set per inference: the setup of the
        // silent-OT expansion the dealt bit triples stand in for (the
        // extension itself ships only seeds, so it carries no per-triple
        // traffic — see `OfflineCostModel::cheetah`).
        let _ = dealer.base_ots(c2pi_mpc::ot::KAPPA);
        counts.base_ots += c2pi_mpc::ot::KAPPA as u64;
    }

    fn prepare_relu(
        &self,
        dealer: &mut Dealer,
        n: usize,
        _cfg: &PiConfig,
        counts: &mut OpCounts,
    ) -> (NlMaterial, NlMaterial) {
        let (c, s) = stage_for(dealer, n, counts);
        (Box::new(CmpMaterial { stages: vec![c] }), Box::new(CmpMaterial { stages: vec![s] }))
    }

    fn prepare_maxpool(
        &self,
        dealer: &mut Dealer,
        windows: usize,
        _cfg: &PiConfig,
        counts: &mut OpCounts,
    ) -> (NlMaterial, NlMaterial) {
        let mut stages_c = Vec::with_capacity(3);
        let mut stages_s = Vec::with_capacity(3);
        for _ in 0..3 {
            let (c, s) = stage_for(dealer, windows, counts);
            stages_c.push(c);
            stages_s.push(s);
        }
        (Box::new(CmpMaterial { stages: stages_c }), Box::new(CmpMaterial { stages: stages_s }))
    }

    fn relu_online(
        &self,
        ep: &dyn Channel,
        side: Side,
        share: &ShareVec,
        material: NlMaterial,
        _cfg: &PiConfig,
        _prg: &mut Prg,
    ) -> Result<ShareVec> {
        let mut mat = downcast_material::<CmpMaterial>(material, "cheetah")?;
        let (mut bits, ta, tb) = mat.stages.remove(0);
        let is_client = side == Side::Client;
        Ok(relu_interactive(ep, is_client, share, &mut bits, &ta, &tb)?)
    }

    fn maxpool_online(
        &self,
        ep: &dyn Channel,
        side: Side,
        quads: &ShareVec,
        material: NlMaterial,
        _cfg: &PiConfig,
        _prg: &mut Prg,
    ) -> Result<ShareVec> {
        let mut mat = downcast_material::<CmpMaterial>(material, "cheetah")?;
        let is_client = side == Side::Client;
        let [a, b, c, d] = split_quads(quads);
        let (mut bt1, ta1, tb1) = mat.stages.remove(0);
        let m1 = max_interactive(ep, is_client, &a, &b, &mut bt1, &ta1, &tb1)?;
        let (mut bt2, ta2, tb2) = mat.stages.remove(0);
        let m2 = max_interactive(ep, is_client, &c, &d, &mut bt2, &ta2, &tb2)?;
        let (mut bt3, ta3, tb3) = mat.stages.remove(0);
        Ok(max_interactive(ep, is_client, &m1, &m2, &mut bt3, &ta3, &tb3)?)
    }

    // The multi-round comparison protocols stay per-member loops (the
    // trait defaults); only the linear layers fuse — one column-stacked
    // matmul over all k members' masked inputs.
    fn linear_online_server_batch(
        &self,
        eps: &[&dyn Channel],
        w: &RingMatrix,
        x1s: &[RingMatrix],
        corrs: &[&LinearCorrServer],
    ) -> Result<Vec<RingMatrix>> {
        Ok(linear_server_batch(eps, w, x1s, corrs)?)
    }
}
