//! The shared half of a serving deployment: the immutable compiled
//! session core plus a thread-safe pool of per-inference correlated
//! randomness.
//!
//! The paper's performance story rests on the offline/online phase
//! split: correlated randomness is generated *input-independently*
//! (offline, by the trusted-dealer stand-in), so the online protocol a
//! client actually waits for is cheap. This module is that split made
//! concurrent:
//!
//! * [`SessionCore`] — everything about a deployment that never changes
//!   between inferences (the compiled execution plan, the ring-encoded
//!   server weights inside it, the engine config, the backend). It is
//!   `Send + Sync` and shared behind an `Arc` by every worker thread.
//! * [`MaterialPool`] — the per-inference state, factored out: a
//!   `Mutex`-guarded queue of ready [`InferenceMaterial`] sets plus the
//!   deterministic per-inference seed stream and the exact
//!   [`PreprocessLedger`]. Any number of threads [`MaterialPool::take`]
//!   concurrently; dealer work always runs *outside* the lock so
//!   generation parallelises, while seed allocation and ledger
//!   accounting stay atomic.
//! * [`Replenisher`] — a background thread running the **offline
//!   phase**: whenever the pool drops below its low watermark it tops
//!   the pool back up to the high watermark with the deterministic
//!   dealer, keeping online inferences off the dealer's critical path.
//!
//! Ledger exactness under contention is a hard invariant (and is stress
//! tested): at every quiescent point,
//! `generated_offline + generated_inline == consumed + available`.

use crate::backend::{NlMaterial, PiBackendImpl};
use crate::engine::PiConfig;
use crate::plan::{Plan, Step, StepData};
use crate::report::{OpCounts, PreprocessLedger};
use crate::{PiError, Result};
use c2pi_mpc::dealer::{AffineCorrClient, AffineCorrServer, Dealer};
use c2pi_mpc::prg::SeedSequence;
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Instant;

/// Client-side per-inference material for one step.
pub(crate) enum ClientMat {
    Lin(c2pi_mpc::dealer::LinearCorrClient),
    Nl(NlMaterial),
    Affine(AffineCorrClient),
    None,
}

/// Server-side per-inference material for one step (weights live in the
/// compiled plan, not here).
pub(crate) enum ServerMat {
    Lin(c2pi_mpc::dealer::LinearCorrServer),
    Nl(NlMaterial),
    Affine(AffineCorrServer),
    None,
}

/// One inference's worth of correlated randomness plus the seed that
/// derives the parties' local randomness. Everything in here is
/// consumed by exactly one online inference. Opaque outside the crate —
/// obtained from [`MaterialPool::take`] and handed straight to a
/// session's online entry points.
pub struct InferenceMaterial {
    pub(crate) seed: u64,
    pub(crate) cmats: Vec<ClientMat>,
    pub(crate) smats: Vec<ServerMat>,
    pub(crate) counts: OpCounts,
}

impl InferenceMaterial {
    /// The deterministic per-inference seed this material was dealt
    /// from (both parties' halves derive from it).
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

impl std::fmt::Debug for InferenceMaterial {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InferenceMaterial")
            .field("seed", &self.seed)
            .field("steps", &self.cmats.len())
            .finish()
    }
}

/// The immutable, shareable part of a compiled session: the execution
/// plan (including the server's ring-encoded weights), the engine
/// configuration and the protocol backend.
///
/// A `SessionCore` is created once per deployment and shared behind an
/// `Arc` by the material pool, the background replenisher and every
/// per-connection worker — none of them ever needs to mutate it.
pub struct SessionCore {
    pub(crate) plan: Plan,
    pub(crate) cfg: PiConfig,
    pub(crate) backend: Arc<dyn PiBackendImpl>,
}

impl std::fmt::Debug for SessionCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionCore")
            .field("backend", &self.backend.name())
            .field("steps", &self.plan.steps.len())
            .finish()
    }
}

impl SessionCore {
    /// The backend's engine name.
    pub fn backend_name(&self) -> &'static str {
        self.backend.name()
    }

    /// Engine configuration the session was compiled with.
    pub fn config(&self) -> &PiConfig {
        &self.cfg
    }

    /// Runs the trusted-dealer stand-in for one inference: walks the
    /// plan and generates both parties' correlated-randomness halves
    /// from `seed`. Deterministic in `seed`, input-independent, and
    /// `&self` — any thread may deal concurrently.
    ///
    /// # Errors
    ///
    /// Propagates dealer errors (caller shape bugs).
    pub(crate) fn deal(&self, seed: u64) -> Result<InferenceMaterial> {
        let mut dealer = Dealer::new(seed);
        let mut counts = self.plan.base_counts.clone();
        // Session-wide correlations first (the per-inference base-OT
        // set the backend's extension amortises across layers).
        self.backend.prepare_session(&mut dealer, &mut counts);
        let mut cmats = Vec::with_capacity(self.plan.steps.len());
        let mut smats = Vec::with_capacity(self.plan.steps.len());
        for (step, data) in self.plan.steps.iter().zip(self.plan.data.iter()) {
            match (step, data) {
                (Step::Conv { .. } | Step::Fc { .. }, StepData::Lin { w, cols, .. }) => {
                    let (corr_c, corr_s) = self.backend.prepare_linear(&mut dealer, w, *cols)?;
                    cmats.push(ClientMat::Lin(corr_c));
                    smats.push(ServerMat::Lin(corr_s));
                }
                (Step::Relu { n }, StepData::None) => {
                    let (cm, sm) =
                        self.backend.prepare_relu(&mut dealer, *n, &self.cfg, &mut counts);
                    cmats.push(ClientMat::Nl(cm));
                    smats.push(ServerMat::Nl(sm));
                }
                (Step::MaxPool { c, h, w }, StepData::None) => {
                    let windows = c * (h / 2) * (w / 2);
                    let (cm, sm) =
                        self.backend.prepare_maxpool(&mut dealer, windows, &self.cfg, &mut counts);
                    cmats.push(ClientMat::Nl(cm));
                    smats.push(ServerMat::Nl(sm));
                }
                (Step::Affine, StepData::Affine { scale, .. }) => {
                    let (corr_c, corr_s) = dealer.affine_corr(scale);
                    cmats.push(ClientMat::Affine(corr_c));
                    smats.push(ServerMat::Affine(corr_s));
                }
                (Step::AvgPool { .. } | Step::Flatten, StepData::None) => {
                    cmats.push(ClientMat::None);
                    smats.push(ServerMat::None);
                }
                _ => return Err(PiError::BadConfig("plan/data mismatch".into())),
            }
        }
        Ok(InferenceMaterial { seed, cmats, smats, counts })
    }
}

/// Mutable pool state, guarded by one mutex.
struct PoolState {
    ready: VecDeque<InferenceMaterial>,
    seeds: SeedSequence,
    ledger: PreprocessLedger,
    shutdown: bool,
}

/// A thread-safe pool of preprocessed per-inference material over one
/// [`SessionCore`].
///
/// This is the meeting point of the paper's two phases when serving is
/// concurrent:
///
/// * **offline** (dealer side): [`MaterialPool::preprocess`] and the
///   background [`Replenisher`] push freshly dealt material;
/// * **online** (per-connection workers): every inference calls
///   [`MaterialPool::take`], which pops pooled material, or — when the
///   pool is dry — allocates the next deterministic seed and runs the
///   dealer *inline on the calling thread*, recording the miss in the
///   ledger so benchmarks can't mistake dealer time for online latency.
///
/// The mutex protects only the queue, the seed stream and the ledger;
/// dealer work (the expensive part) always runs outside it, so
/// concurrent takers and the replenisher generate material in parallel.
/// Seeds are handed out under the lock in a single deterministic
/// sequence, which makes the *multiset* of consumed material identical
/// to a sequential run with the same master seed — the property the
/// `pool_stress` test pins down bit-for-bit.
pub struct MaterialPool {
    core: Arc<SessionCore>,
    state: Mutex<PoolState>,
    /// Notified on every take and on shutdown; the replenisher waits
    /// here for the pool to fall below its low watermark.
    drained: Condvar,
}

impl std::fmt::Debug for MaterialPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.lock();
        f.debug_struct("MaterialPool")
            .field("pooled", &st.ready.len())
            .field("ledger", &st.ledger)
            .finish()
    }
}

impl MaterialPool {
    /// Creates an empty pool whose per-inference seeds fork from
    /// `core.config().dealer_seed` (the same domain-separated stream a
    /// single-threaded session uses).
    pub fn new(core: Arc<SessionCore>) -> Self {
        let seeds = SeedSequence::new(core.cfg.dealer_seed, b"c2pi/session/dealer");
        MaterialPool {
            core,
            state: Mutex::new(PoolState {
                ready: VecDeque::new(),
                seeds,
                ledger: PreprocessLedger::default(),
                shutdown: false,
            }),
            drained: Condvar::new(),
        }
    }

    /// The shared immutable session core this pool deals against.
    pub fn core(&self) -> &Arc<SessionCore> {
        &self.core
    }

    fn lock(&self) -> MutexGuard<'_, PoolState> {
        self.state.lock().expect("material pool mutex poisoned")
    }

    /// Material sets currently pooled for future inferences.
    pub fn pooled(&self) -> usize {
        self.lock().ready.len()
    }

    /// Ledger snapshot with `available` filled in.
    pub fn ledger(&self) -> PreprocessLedger {
        let st = self.lock();
        let mut l = st.ledger;
        l.available = st.ready.len() as u64;
        l
    }

    /// Offline phase: deals material for `n` future inferences and
    /// pools it. Safe to call from any thread, concurrently with takers
    /// and the replenisher; dealer work runs outside the pool lock.
    ///
    /// # Errors
    ///
    /// Propagates dealer errors (caller shape bugs).
    pub fn preprocess(&self, n: usize) -> Result<()> {
        for _ in 0..n {
            let seed = self.lock().seeds.next();
            let start = Instant::now();
            let material = self.core.deal(seed)?;
            let elapsed = start.elapsed().as_secs_f64();
            let mut st = self.lock();
            st.ledger.generated_offline += 1;
            st.ledger.generation_seconds += elapsed;
            st.ledger.base_ots += material.counts.base_ots;
            st.ledger.extended_ots += material.counts.ext_ots;
            st.ready.push_back(material);
        }
        Ok(())
    }

    /// Takes one inference's material: pooled if available, otherwise
    /// dealt inline on the calling thread (and recorded as
    /// `generated_inline` — the critical-path miss the offline phase
    /// exists to avoid).
    ///
    /// # Errors
    ///
    /// Propagates dealer errors from the inline path.
    pub fn take(&self) -> Result<InferenceMaterial> {
        let mut st = self.lock();
        if let Some(m) = st.ready.pop_front() {
            st.ledger.consumed += 1;
            drop(st);
            // Wake the replenisher: the pool may now be below watermark.
            self.drained.notify_all();
            return Ok(m);
        }
        // Pool dry: allocate the next seed atomically, then pay the
        // dealer outside the lock so concurrent misses generate in
        // parallel.
        let seed = st.seeds.next();
        st.ledger.consumed += 1;
        st.ledger.generated_inline += 1;
        drop(st);
        self.drained.notify_all();
        let start = Instant::now();
        let material = self.core.deal(seed)?;
        let mut st = self.lock();
        st.ledger.generation_seconds += start.elapsed().as_secs_f64();
        st.ledger.base_ots += material.counts.base_ots;
        st.ledger.extended_ots += material.counts.ext_ots;
        drop(st);
        Ok(material)
    }

    /// Records one externally dealt material set (a client generating
    /// its half for a server-dealt seed): dealer time on this party's
    /// critical path, so it counts as consumed + inline.
    pub(crate) fn note_dealt_inline(&self, seconds: f64, counts: &OpCounts) {
        let mut st = self.lock();
        st.ledger.consumed += 1;
        st.ledger.generated_inline += 1;
        st.ledger.generation_seconds += seconds;
        st.ledger.base_ots += counts.base_ots;
        st.ledger.extended_ots += counts.ext_ots;
    }

    /// Signals shutdown to any [`Replenisher`] waiting on this pool.
    pub fn shutdown(&self) {
        self.lock().shutdown = true;
        self.drained.notify_all();
    }

    /// Whether [`MaterialPool::shutdown`] has been called.
    pub fn is_shut_down(&self) -> bool {
        self.lock().shutdown
    }
}

/// Handle to the background offline-phase thread that keeps a
/// [`MaterialPool`] topped up.
///
/// The thread sleeps on the pool's condvar while `pooled() >= low`; as
/// soon as takers drain the pool below the low watermark it deals fresh
/// material (outside the lock) until the pool reaches the high
/// watermark again. In paper terms this thread *is* the offline phase,
/// running concurrently with every online inference. Dropping the
/// handle (or calling [`Replenisher::stop`]) shuts the thread down and
/// joins it.
#[derive(Debug)]
pub struct Replenisher {
    pool: Arc<MaterialPool>,
    handle: Option<JoinHandle<Result<()>>>,
}

impl Replenisher {
    /// Spawns the replenisher thread for `pool`. `low` is the watermark
    /// that triggers a refill, `high` the level it refills to
    /// (`low < high`; a refill batch is `high - pooled()` sets).
    pub fn spawn(pool: Arc<MaterialPool>, low: usize, high: usize) -> Replenisher {
        let high = high.max(low + 1);
        let worker = Arc::clone(&pool);
        let handle = std::thread::spawn(move || replenish_loop(&worker, low, high));
        Replenisher { pool, handle: Some(handle) }
    }

    /// The pool this replenisher feeds.
    pub fn pool(&self) -> &Arc<MaterialPool> {
        &self.pool
    }

    /// Shuts the background thread down and joins it, returning its
    /// final result.
    ///
    /// # Errors
    ///
    /// Returns the dealer error that terminated the thread early, or
    /// [`PiError::PartyPanic`] if it panicked.
    pub fn stop(mut self) -> Result<()> {
        self.stop_inner()
    }

    fn stop_inner(&mut self) -> Result<()> {
        self.pool.shutdown();
        match self.handle.take() {
            Some(h) => h.join().map_err(|_| PiError::PartyPanic("replenisher"))?,
            None => Ok(()),
        }
    }
}

impl Drop for Replenisher {
    fn drop(&mut self) {
        let _ = self.stop_inner();
    }
}

fn replenish_loop(pool: &MaterialPool, low: usize, high: usize) -> Result<()> {
    let mut st = pool.lock();
    loop {
        while !st.shutdown && st.ready.len() >= low {
            st = pool.drained.wait(st).expect("material pool mutex poisoned");
        }
        if st.shutdown {
            return Ok(());
        }
        while st.ready.len() < high && !st.shutdown {
            let seed = st.seeds.next();
            drop(st);
            let start = Instant::now();
            let material = pool.core.deal(seed)?;
            let elapsed = start.elapsed().as_secs_f64();
            st = pool.lock();
            st.ledger.generated_offline += 1;
            st.ledger.generation_seconds += elapsed;
            st.ledger.base_ots += material.counts.base_ots;
            st.ledger.extended_ots += material.counts.ext_ots;
            st.ready.push_back(material);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::specs_of;
    use crate::plan::compile;
    use c2pi_nn::layers::{Conv2d, Relu};
    use c2pi_nn::Sequential;
    use std::time::Duration;

    fn tiny_core() -> Arc<SessionCore> {
        let mut seq = Sequential::new();
        seq.push(Conv2d::new(1, 2, 3, 1, 1, 1, 1));
        seq.push(Relu::new());
        let cfg = PiConfig::default();
        let plan = compile(&specs_of(&seq), (1, 6, 6), cfg.fixed).unwrap();
        Arc::new(SessionCore { plan, cfg, backend: cfg.backend.engine() })
    }

    fn wait_until(deadline: Duration, mut cond: impl FnMut() -> bool) -> bool {
        let start = Instant::now();
        while start.elapsed() < deadline {
            if cond() {
                return true;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        cond()
    }

    #[test]
    fn ledger_tracks_offline_and_inline_paths() {
        let pool = MaterialPool::new(tiny_core());
        pool.preprocess(2).unwrap();
        assert_eq!(pool.pooled(), 2);
        let _a = pool.take().unwrap();
        let _b = pool.take().unwrap();
        let _c = pool.take().unwrap(); // dry → inline
        let l = pool.ledger();
        assert_eq!(l.generated_offline, 2);
        assert_eq!(l.generated_inline, 1);
        assert_eq!(l.consumed, 3);
        assert_eq!(l.available, 0);
        assert_eq!(l.generated_offline + l.generated_inline, l.consumed + l.available);
    }

    #[test]
    fn seeds_are_the_sequential_stream_regardless_of_path() {
        // Pool path and a bare SeedSequence must hand out the same
        // deterministic seeds in order.
        let core = tiny_core();
        let mut reference = SeedSequence::new(core.cfg.dealer_seed, b"c2pi/session/dealer");
        let want: Vec<u64> = (0..4).map(|_| reference.next()).collect();
        let pool = MaterialPool::new(core);
        pool.preprocess(2).unwrap();
        let got: Vec<u64> = (0..4).map(|_| pool.take().unwrap().seed).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn replenisher_keeps_pool_above_watermark_and_stops_cleanly() {
        let pool = Arc::new(MaterialPool::new(tiny_core()));
        let replenisher = Replenisher::spawn(Arc::clone(&pool), 2, 5);
        // Empty pool is below the watermark: it must fill to `high`.
        assert!(
            wait_until(Duration::from_secs(20), || pool.pooled() >= 5),
            "replenisher never reached the high watermark (pooled {})",
            pool.pooled()
        );
        // Drain below the low watermark; it must recover.
        for _ in 0..4 {
            pool.take().unwrap();
        }
        assert!(
            wait_until(Duration::from_secs(20), || pool.pooled() >= 5),
            "replenisher never recovered the watermark (pooled {})",
            pool.pooled()
        );
        let l = pool.ledger();
        assert_eq!(l.generated_inline, 0, "replenisher kept takers off the inline path");
        replenisher.stop().unwrap();
        assert!(pool.is_shut_down());
    }
}
