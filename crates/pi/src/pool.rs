//! The shared half of a serving deployment: the immutable compiled
//! session core plus a thread-safe pool of per-inference correlated
//! randomness.
//!
//! The paper's performance story rests on the offline/online phase
//! split: correlated randomness is generated *input-independently*
//! (offline, by the trusted-dealer stand-in), so the online protocol a
//! client actually waits for is cheap. This module is that split made
//! concurrent:
//!
//! * [`SessionCore`] — everything about a deployment that never changes
//!   between inferences (the compiled execution plan, the ring-encoded
//!   server weights inside it, the engine config, the backend). It is
//!   `Send + Sync` and shared behind an `Arc` by every worker thread.
//! * [`MaterialPool`] — the per-inference state, factored out: a
//!   `Mutex`-guarded queue of ready [`InferenceMaterial`] sets plus the
//!   deterministic per-inference seed stream and the exact
//!   [`PreprocessLedger`]. Any number of threads [`MaterialPool::take`]
//!   concurrently; dealer work always runs *outside* the lock so
//!   generation parallelises, while seed allocation and ledger
//!   accounting stay atomic.
//! * [`Replenisher`] — a background thread running the **offline
//!   phase**: whenever the pool drops below its low watermark it tops
//!   the pool back up to the high watermark with the deterministic
//!   dealer, keeping online inferences off the dealer's critical path.
//!
//! Ledger exactness under contention is a hard invariant (and is stress
//! tested): at every quiescent point,
//! `generated_offline + generated_inline == consumed + available`.

use crate::backend::{NlMaterial, PiBackendImpl};
use crate::engine::PiConfig;
use crate::plan::{Plan, Step, StepData};
use crate::report::{OpCounts, PreprocessLedger};
use crate::store::{MaterialStore, RecordKind, RestoreReport};
use crate::{PiError, Result};
use c2pi_mpc::dealer::{AffineCorrClient, AffineCorrServer, Dealer, DealtSeed};
use c2pi_mpc::prg::SeedSequence;
use std::collections::VecDeque;
use std::path::Path;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Instant;

/// Client-side per-inference material for one step.
pub(crate) enum ClientMat {
    Lin(c2pi_mpc::dealer::LinearCorrClient),
    Nl(NlMaterial),
    Affine(AffineCorrClient),
    None,
}

/// Server-side per-inference material for one step (weights live in the
/// compiled plan, not here).
pub(crate) enum ServerMat {
    Lin(c2pi_mpc::dealer::LinearCorrServer),
    Nl(NlMaterial),
    Affine(AffineCorrServer),
    None,
}

/// One inference's worth of correlated randomness plus the seed that
/// derives the parties' local randomness. Everything in here is
/// consumed by exactly one online inference. Opaque outside the crate —
/// obtained from [`MaterialPool::take`] and handed straight to a
/// session's online entry points.
pub struct InferenceMaterial {
    pub(crate) seed: u64,
    pub(crate) cmats: Vec<ClientMat>,
    pub(crate) smats: Vec<ServerMat>,
    pub(crate) counts: OpCounts,
}

impl InferenceMaterial {
    /// The deterministic per-inference seed this material was dealt
    /// from (both parties' halves derive from it).
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

impl std::fmt::Debug for InferenceMaterial {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InferenceMaterial")
            .field("seed", &self.seed)
            .field("steps", &self.cmats.len())
            .finish()
    }
}

/// The immutable, shareable part of a compiled session: the execution
/// plan (including the server's ring-encoded weights), the engine
/// configuration and the protocol backend.
///
/// A `SessionCore` is created once per deployment and shared behind an
/// `Arc` by the material pool, the background replenisher and every
/// per-connection worker — none of them ever needs to mutate it.
pub struct SessionCore {
    pub(crate) plan: Plan,
    pub(crate) cfg: PiConfig,
    pub(crate) backend: Arc<dyn PiBackendImpl>,
}

impl std::fmt::Debug for SessionCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionCore")
            .field("backend", &self.backend.name())
            .field("steps", &self.plan.steps.len())
            .finish()
    }
}

impl SessionCore {
    /// The backend's engine name.
    pub fn backend_name(&self) -> &'static str {
        self.backend.name()
    }

    /// Engine configuration the session was compiled with.
    pub fn config(&self) -> &PiConfig {
        &self.cfg
    }

    /// Per-step `(kind, items)` metadata of the plan — the shape a
    /// [`DealtSeed`] carries so the receiving party can validate that
    /// both sides expand the same stream.
    fn step_meta(&self) -> Vec<(u8, u32)> {
        self.plan
            .steps
            .iter()
            .map(|s| match s {
                Step::Conv { c, h, w, .. } => (1u8, (c * h * w) as u32),
                Step::Fc { k } => (2, *k as u32),
                Step::Relu { n } => (3, *n as u32),
                Step::MaxPool { c, h, w } => (4, (c * (h / 2) * (w / 2)) as u32),
                Step::AvgPool { c, h, w, .. } => (5, (c * h * w) as u32),
                Step::Flatten => (6, 0),
                Step::Affine => (7, 0),
            })
            .collect()
    }

    /// Stable fingerprint of this deployment: backend, master dealer
    /// seed, fixed-point format and plan shape (FNV-1a). Used as the
    /// [`DealtSeed`] nonce — so a seed dealt under one deployment never
    /// expands under another — and as the [`MaterialStore`] header
    /// fingerprint so a store file is only ever warm-booted by the
    /// deployment that wrote it. Deliberately excludes knobs documented
    /// as result-invariant (`gc_chunk`).
    pub fn session_fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        eat(b"c2pi/session-fingerprint/v1");
        eat(self.backend.name().as_bytes());
        eat(&self.cfg.dealer_seed.to_le_bytes());
        eat(&self.cfg.fixed.frac_bits().to_le_bytes());
        for (kind, items) in self.step_meta() {
            eat(&[kind]);
            eat(&items.to_le_bytes());
        }
        h
    }

    /// The compact dealt artifact for per-inference seed `seed` — what
    /// the server actually ships to the client instead of expanded
    /// correlations.
    pub(crate) fn dealt_seed(&self, seed: u64) -> DealtSeed {
        DealtSeed { seed, nonce: self.session_fingerprint(), steps: self.step_meta() }
    }

    /// Runs the trusted-dealer stand-in for one inference: walks the
    /// plan and expands both parties' correlated-randomness halves from
    /// the compact [`DealtSeed`] for `seed`. Deterministic in `seed`
    /// (and the session fingerprint), input-independent, and `&self` —
    /// any thread may deal concurrently.
    ///
    /// The returned counts carry the seed-compression shape: how many
    /// bytes the dealt artifact occupies on the wire (`seed_bytes`) and
    /// how many the expansion occupies locally (`expanded_bytes`).
    ///
    /// # Errors
    ///
    /// Propagates dealer errors (caller shape bugs).
    pub(crate) fn deal(&self, seed: u64) -> Result<InferenceMaterial> {
        let dealt = self.dealt_seed(seed);
        let mut dealer = Dealer::for_dealt(&dealt);
        let mut counts = self.plan.base_counts.clone();
        // Session-wide correlations first (the per-inference base-OT
        // set the backend's extension amortises across layers).
        self.backend.prepare_session(&mut dealer, &mut counts);
        let mut cmats = Vec::with_capacity(self.plan.steps.len());
        let mut smats = Vec::with_capacity(self.plan.steps.len());
        for (step, data) in self.plan.steps.iter().zip(self.plan.data.iter()) {
            match (step, data) {
                (Step::Conv { .. } | Step::Fc { .. }, StepData::Lin { w, cols, .. }) => {
                    let (corr_c, corr_s) = self.backend.prepare_linear(&mut dealer, w, *cols)?;
                    cmats.push(ClientMat::Lin(corr_c));
                    smats.push(ServerMat::Lin(corr_s));
                }
                (Step::Relu { n }, StepData::None) => {
                    let (cm, sm) =
                        self.backend.prepare_relu(&mut dealer, *n, &self.cfg, &mut counts);
                    cmats.push(ClientMat::Nl(cm));
                    smats.push(ServerMat::Nl(sm));
                }
                (Step::MaxPool { c, h, w }, StepData::None) => {
                    let windows = c * (h / 2) * (w / 2);
                    let (cm, sm) =
                        self.backend.prepare_maxpool(&mut dealer, windows, &self.cfg, &mut counts);
                    cmats.push(ClientMat::Nl(cm));
                    smats.push(ServerMat::Nl(sm));
                }
                (Step::Affine, StepData::Affine { scale, .. }) => {
                    let (corr_c, corr_s) = dealer.affine_corr(scale);
                    cmats.push(ClientMat::Affine(corr_c));
                    smats.push(ServerMat::Affine(corr_s));
                }
                (Step::AvgPool { .. } | Step::Flatten, StepData::None) => {
                    cmats.push(ClientMat::None);
                    smats.push(ServerMat::None);
                }
                _ => return Err(PiError::BadConfig("plan/data mismatch".into())),
            }
        }
        counts.seed_bytes += dealt.wire_bytes();
        counts.expanded_bytes += dealer.expanded_bytes();
        Ok(InferenceMaterial { seed, cmats, smats, counts })
    }
}

/// The serialized authority over one deployment's deterministic
/// per-inference seed stream.
///
/// Factored out of the pool so several pool shards can share one
/// stream: the tiny mutex here guards *only* a PRG step and a position
/// increment — nanoseconds — while each shard's own lock covers its
/// queue, ledger and store I/O. That split is what makes the consumed
/// multiset of a sharded deployment a prefix-permutation of the single
/// sequential stream (every seed is allocated exactly once, in global
/// order, no matter which shard asked), killing the one hot global
/// lock without giving up determinism.
pub struct SeedAllocator {
    inner: Mutex<AllocState>,
}

struct AllocState {
    seq: SeedSequence,
    /// Seeds handed out so far — the global stream position, persisted
    /// with every store record so a warm boot can fast-forward.
    drawn: u64,
}

impl std::fmt::Debug for SeedAllocator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SeedAllocator").field("drawn", &self.drawn()).finish()
    }
}

impl SeedAllocator {
    /// Allocator over the domain-separated per-inference stream forked
    /// from `master` (the same stream a single-threaded session uses).
    pub fn new(master: u64) -> Self {
        SeedAllocator {
            inner: Mutex::new(AllocState {
                seq: SeedSequence::new(master, b"c2pi/session/dealer"),
                drawn: 0,
            }),
        }
    }

    /// Hands out the next seed with its 1-based stream position.
    pub fn next(&self) -> (u64, u64) {
        let mut st = self.inner.lock().expect("seed allocator mutex poisoned");
        st.drawn += 1;
        (st.drawn, st.seq.next())
    }

    /// The stream position: seeds allocated so far.
    pub fn drawn(&self) -> u64 {
        self.inner.lock().expect("seed allocator mutex poisoned").drawn
    }

    /// Advances the stream to `position` (a warm boot discarding every
    /// seed a previous process already drew). No-op when the stream is
    /// already at or past it.
    pub(crate) fn fast_forward_to(&self, position: u64) {
        let mut st = self.inner.lock().expect("seed allocator mutex poisoned");
        while st.drawn < position {
            st.drawn += 1;
            st.seq.next();
        }
    }
}

/// Mutable pool state, guarded by one mutex.
struct PoolState {
    ready: VecDeque<InferenceMaterial>,
    ledger: PreprocessLedger,
    shutdown: bool,
    /// Highest global stream position this pool has observed (its own
    /// draws and its warm-boot scan), persisted with every store record.
    drawn: u64,
    /// Material sets ever pushed into `ready` (monotone). Lets blocking
    /// takers distinguish a genuine restock from a spurious condvar
    /// wakeup.
    produced: u64,
    /// Persistent spill target; `None` for in-memory-only pools.
    store: Option<MaterialStore>,
}

/// Result of the pooled-only take paths ([`MaterialPool::try_take`],
/// [`MaterialPool::take_blocking`]), which — unlike
/// [`MaterialPool::take`] — never fall back to inline dealing, so they
/// must say explicitly why no material came back.
#[derive(Debug)]
pub enum PoolTake {
    /// A pooled material set.
    Material(Box<InferenceMaterial>),
    /// The pool is currently empty but still live (more material may be
    /// preprocessed or replenished).
    Empty,
    /// The pool has been shut down and drained: no material will ever
    /// come back.
    ShutDown,
}

/// A thread-safe pool of preprocessed per-inference material over one
/// [`SessionCore`].
///
/// This is the meeting point of the paper's two phases when serving is
/// concurrent:
///
/// * **offline** (dealer side): [`MaterialPool::preprocess`] and the
///   background [`Replenisher`] push freshly dealt material;
/// * **online** (per-connection workers): every inference calls
///   [`MaterialPool::take`], which pops pooled material, or — when the
///   pool is dry — allocates the next deterministic seed and runs the
///   dealer *inline on the calling thread*, recording the miss in the
///   ledger so benchmarks can't mistake dealer time for online latency.
///
/// The mutex protects only the queue, the seed stream and the ledger;
/// dealer work (the expensive part) always runs outside it, so
/// concurrent takers and the replenisher generate material in parallel.
/// Seeds are handed out under the lock in a single deterministic
/// sequence, which makes the *multiset* of consumed material identical
/// to a sequential run with the same master seed — the property the
/// `pool_stress` test pins down bit-for-bit.
pub struct MaterialPool {
    core: Arc<SessionCore>,
    /// Seed stream authority — exclusive to this pool, or shared with
    /// sibling shards (see [`SeedAllocator`]).
    alloc: Arc<SeedAllocator>,
    state: Mutex<PoolState>,
    /// Notified on every take and on shutdown; the replenisher waits
    /// here for the pool to fall below its low watermark.
    drained: Condvar,
    /// Notified on every push (and on shutdown); blocking takers wait
    /// here, checking the `produced` counter against spurious wakeups.
    restocked: Condvar,
}

impl std::fmt::Debug for MaterialPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.lock();
        f.debug_struct("MaterialPool")
            .field("pooled", &st.ready.len())
            .field("ledger", &st.ledger)
            .finish()
    }
}

impl MaterialPool {
    /// Creates an empty pool whose per-inference seeds fork from
    /// `core.config().dealer_seed` (the same domain-separated stream a
    /// single-threaded session uses).
    pub fn new(core: Arc<SessionCore>) -> Self {
        let alloc = Arc::new(SeedAllocator::new(core.cfg.dealer_seed));
        Self::with_allocator(core, alloc)
    }

    /// Creates an empty pool drawing from an explicit (possibly shared)
    /// seed allocator — the constructor sharded deployments use so all
    /// shards consume one global stream.
    pub fn with_allocator(core: Arc<SessionCore>, alloc: Arc<SeedAllocator>) -> Self {
        MaterialPool {
            core,
            alloc,
            state: Mutex::new(PoolState {
                ready: VecDeque::new(),
                ledger: PreprocessLedger::default(),
                shutdown: false,
                drawn: 0,
                produced: 0,
                store: None,
            }),
            drained: Condvar::new(),
            restocked: Condvar::new(),
        }
    }

    /// The shared immutable session core this pool deals against.
    pub fn core(&self) -> &Arc<SessionCore> {
        &self.core
    }

    /// The seed allocator this pool draws from.
    pub fn allocator(&self) -> &Arc<SeedAllocator> {
        &self.alloc
    }

    /// Allocates the next deterministic per-inference seed, recording
    /// the stream position in this pool's persisted watermark.
    fn draw_seed(&self, st: &mut MutexGuard<'_, PoolState>) -> u64 {
        let (position, seed) = self.alloc.next();
        st.drawn = st.drawn.max(position);
        seed
    }

    fn lock(&self) -> MutexGuard<'_, PoolState> {
        self.state.lock().expect("material pool mutex poisoned")
    }

    /// Material sets currently pooled for future inferences.
    pub fn pooled(&self) -> usize {
        self.lock().ready.len()
    }

    /// Ledger snapshot with `available` filled in.
    pub fn ledger(&self) -> PreprocessLedger {
        let st = self.lock();
        let mut l = st.ledger;
        l.available = st.ready.len() as u64;
        l
    }

    /// Offline phase: deals material for `n` future inferences and
    /// pools it. Safe to call from any thread, concurrently with takers
    /// and the replenisher; dealer work runs outside the pool lock.
    ///
    /// # Errors
    ///
    /// Propagates dealer errors (caller shape bugs) and store append
    /// failures.
    pub fn preprocess(&self, n: usize) -> Result<()> {
        for _ in 0..n {
            let seed = self.draw_seed(&mut self.lock());
            let start = Instant::now();
            let material = self.core.deal(seed)?;
            let elapsed = start.elapsed().as_secs_f64();
            let mut st = self.lock();
            st.ledger.generated_offline += 1;
            credit_generation(&mut st.ledger, &material.counts, elapsed);
            push_ready(&mut st, material)?;
            drop(st);
            self.restocked.notify_all();
        }
        Ok(())
    }

    /// Pops pooled material under the held lock, doing the consumed
    /// accounting and the store append (so a concurrent taker can never
    /// observe the pop before the store records it).
    fn pop_ready(&self, st: &mut MutexGuard<'_, PoolState>) -> Result<Option<InferenceMaterial>> {
        match st.ready.pop_front() {
            Some(m) => {
                st.ledger.consumed += 1;
                persist(st, RecordKind::Consumed, m.seed)?;
                Ok(Some(m))
            }
            None => Ok(None),
        }
    }

    /// Takes one inference's material: pooled if available, otherwise
    /// dealt inline on the calling thread (and recorded as
    /// `generated_inline` — the critical-path miss the offline phase
    /// exists to avoid).
    ///
    /// # Errors
    ///
    /// Propagates dealer errors from the inline path and store append
    /// failures.
    pub fn take(&self) -> Result<InferenceMaterial> {
        let mut st = self.lock();
        if let Some(m) = self.pop_ready(&mut st)? {
            drop(st);
            // Wake the replenisher: the pool may now be below watermark.
            self.drained.notify_all();
            return Ok(m);
        }
        // Pool dry: allocate the next seed atomically, then pay the
        // dealer outside the lock so concurrent misses generate in
        // parallel.
        let seed = self.draw_seed(&mut st);
        st.ledger.consumed += 1;
        st.ledger.generated_inline += 1;
        drop(st);
        self.drained.notify_all();
        let start = Instant::now();
        let material = self.core.deal(seed)?;
        let elapsed = start.elapsed().as_secs_f64();
        let mut st = self.lock();
        credit_generation(&mut st.ledger, &material.counts, elapsed);
        persist(&mut st, RecordKind::Consumed, seed)?;
        drop(st);
        Ok(material)
    }

    /// Non-blocking pooled-only take. Pops ready material even during
    /// shutdown (draining), and reports [`PoolTake::ShutDown`] only once
    /// the pool is both shut down and empty.
    ///
    /// # Errors
    ///
    /// Propagates store append failures.
    pub fn try_take(&self) -> Result<PoolTake> {
        let mut st = self.lock();
        if let Some(m) = self.pop_ready(&mut st)? {
            drop(st);
            self.drained.notify_all();
            return Ok(PoolTake::Material(Box::new(m)));
        }
        Ok(if st.shutdown { PoolTake::ShutDown } else { PoolTake::Empty })
    }

    /// Blocking pooled-only take: waits until material is pushed or the
    /// pool shuts down. A condvar wakeup alone is not trusted — the
    /// `produced` counter must have advanced (or shutdown must be set)
    /// before the queue is re-examined, so a spurious wakeup can neither
    /// return [`PoolTake::ShutDown`] on a live pool nor spin hot.
    ///
    /// # Errors
    ///
    /// Propagates store append failures.
    pub fn take_blocking(&self) -> Result<PoolTake> {
        let mut st = self.lock();
        loop {
            if let Some(m) = self.pop_ready(&mut st)? {
                drop(st);
                self.drained.notify_all();
                return Ok(PoolTake::Material(Box::new(m)));
            }
            if st.shutdown {
                return Ok(PoolTake::ShutDown);
            }
            let produced_before = st.produced;
            st = self.restocked.wait(st).expect("material pool mutex poisoned");
            if st.produced == produced_before && !st.shutdown {
                // Spurious wakeup: nothing was produced and nothing shut
                // down — keep waiting rather than re-deciding.
                continue;
            }
        }
    }

    /// Records one externally dealt material set (a client generating
    /// its half for a server-dealt seed): dealer time on this party's
    /// critical path, so it counts as consumed + inline.
    pub(crate) fn note_dealt_inline(&self, seconds: f64, counts: &OpCounts) {
        let mut st = self.lock();
        st.ledger.consumed += 1;
        st.ledger.generated_inline += 1;
        credit_generation(&mut st.ledger, counts, seconds);
    }

    /// Attaches a persistent [`MaterialStore`] at `path`, warm-booting
    /// the pool from whatever a previous process left there: the seed
    /// stream is fast-forwarded past every seed the previous process
    /// drew, the ledger resumes from its last persisted snapshot, and
    /// every dealt-but-unconsumed seed is re-expanded into the pool
    /// (counted in `ledger.restored`, *not* as new offline generation —
    /// nothing is re-preprocessed). From then on every deal and consume
    /// is appended to the store.
    ///
    /// Must be called on a fresh pool, before any preprocessing or
    /// serving.
    ///
    /// # Errors
    ///
    /// [`PiError::Store`] on I/O failure or when the file belongs to a
    /// different deployment (fingerprint mismatch); [`PiError::BadConfig`]
    /// when the pool already has a store or has already been used.
    pub fn attach_store(&self, path: impl AsRef<Path>) -> Result<RestoreReport> {
        let (store, scan) = MaterialStore::open(path.as_ref(), self.core.session_fingerprint())?;
        if self.alloc.drawn() != 0 {
            return Err(PiError::BadConfig(
                "attach_store requires a fresh seed stream (attach before preprocessing or \
                 serving; sharded pools attach through ShardedMaterialPool::attach_stores)"
                    .into(),
            ));
        }
        self.alloc.fast_forward_to(scan.drawn);
        self.install_scan(store, scan)
    }

    /// Installs an already-opened store and its replayed scan into this
    /// pool: ledger resumed, pending seeds re-expanded into the ready
    /// queue (counted in `ledger.restored`). The caller is responsible
    /// for fast-forwarding the seed allocator — exactly once per
    /// *stream*, which for sharded deployments means once across all
    /// segments, not once per shard.
    pub(crate) fn install_scan(
        &self,
        store: MaterialStore,
        scan: crate::store::StoreScan,
    ) -> Result<RestoreReport> {
        let mut st = self.lock();
        if st.store.is_some() {
            return Err(PiError::BadConfig("material store already attached".into()));
        }
        if st.drawn != 0 || st.ledger != PreprocessLedger::default() {
            return Err(PiError::BadConfig(
                "attach_store requires a fresh pool (attach before preprocessing or serving)"
                    .into(),
            ));
        }
        st.drawn = scan.drawn;
        st.ledger = scan.ledger;
        st.ledger.restored += scan.pending.len() as u64;
        let report = RestoreReport {
            restored: scan.pending.len(),
            drawn: scan.drawn,
            records: scan.records,
            truncated_tail: scan.truncated,
        };
        // Re-expand the surviving seeds into ready material. Boot-time
        // work under the lock is fine: nothing serves yet.
        for &seed in &scan.pending {
            let material = self.core.deal(seed)?;
            st.ready.push_back(material);
            st.produced += 1;
        }
        st.store = Some(store);
        drop(st);
        self.restocked.notify_all();
        Ok(report)
    }

    /// Whether a persistent store is attached.
    pub fn has_store(&self) -> bool {
        self.lock().store.is_some()
    }

    /// Graceful-drain flush: appends a flush marker carrying the final
    /// ledger snapshot and fsyncs the store. No-op without a store.
    ///
    /// # Errors
    ///
    /// Propagates store I/O failures.
    pub fn flush_store(&self) -> Result<()> {
        let mut st = self.lock();
        if st.store.is_some() {
            persist(&mut st, RecordKind::Flush, 0)?;
            st.store.as_mut().expect("store checked above").sync()?;
        }
        Ok(())
    }

    /// Signals shutdown to any [`Replenisher`] or blocking taker
    /// waiting on this pool.
    pub fn shutdown(&self) {
        self.lock().shutdown = true;
        self.drained.notify_all();
        self.restocked.notify_all();
    }

    /// Whether [`MaterialPool::shutdown`] has been called.
    pub fn is_shut_down(&self) -> bool {
        self.lock().shutdown
    }
}

/// Folds one dealt material set's generation shape into the ledger
/// (time, OT counts, seed-compression bytes) — everything except the
/// offline/inline/consumed attribution, which differs per path.
fn credit_generation(ledger: &mut PreprocessLedger, counts: &OpCounts, seconds: f64) {
    ledger.generation_seconds += seconds;
    ledger.base_ots += counts.base_ots;
    ledger.extended_ots += counts.ext_ots;
    ledger.seed_bytes += counts.seed_bytes;
    ledger.expanded_bytes += counts.expanded_bytes;
}

/// Pushes dealt material into the ready queue and appends the matching
/// store record under the same lock hold, so no taker can consume
/// material the store has not yet recorded as dealt.
fn push_ready(st: &mut MutexGuard<'_, PoolState>, material: InferenceMaterial) -> Result<()> {
    let seed = material.seed;
    st.ready.push_back(material);
    st.produced += 1;
    persist(st, RecordKind::Dealt, seed)
}

/// Appends one record (seed + stream position + ledger snapshot with
/// `available` filled) to the attached store, if any.
fn persist(st: &mut MutexGuard<'_, PoolState>, kind: RecordKind, seed: u64) -> Result<()> {
    let drawn = st.drawn;
    let mut ledger = st.ledger;
    ledger.available = st.ready.len() as u64;
    match st.store.as_mut() {
        Some(store) => store.append(kind, seed, drawn, &ledger),
        None => Ok(()),
    }
}

/// Handle to the background offline-phase thread that keeps a
/// [`MaterialPool`] topped up.
///
/// The thread sleeps on the pool's condvar while `pooled() >= low`; as
/// soon as takers drain the pool below the low watermark it deals fresh
/// material (outside the lock) until the pool reaches the high
/// watermark again. In paper terms this thread *is* the offline phase,
/// running concurrently with every online inference. Dropping the
/// handle (or calling [`Replenisher::stop`]) shuts the thread down and
/// joins it.
#[derive(Debug)]
pub struct Replenisher {
    pool: Arc<MaterialPool>,
    handle: Option<JoinHandle<Result<()>>>,
}

impl Replenisher {
    /// Spawns the replenisher thread for `pool`. `low` is the watermark
    /// that triggers a refill, `high` the level it refills to
    /// (`low < high`; a refill batch is `high - pooled()` sets).
    pub fn spawn(pool: Arc<MaterialPool>, low: usize, high: usize) -> Replenisher {
        let high = high.max(low + 1);
        let worker = Arc::clone(&pool);
        let handle = std::thread::spawn(move || replenish_loop(&worker, low, high));
        Replenisher { pool, handle: Some(handle) }
    }

    /// The pool this replenisher feeds.
    pub fn pool(&self) -> &Arc<MaterialPool> {
        &self.pool
    }

    /// Shuts the background thread down and joins it, returning its
    /// final result.
    ///
    /// # Errors
    ///
    /// Returns the dealer error that terminated the thread early, or
    /// [`PiError::PartyPanic`] if it panicked.
    pub fn stop(mut self) -> Result<()> {
        self.stop_inner()
    }

    fn stop_inner(&mut self) -> Result<()> {
        self.pool.shutdown();
        match self.handle.take() {
            Some(h) => h.join().map_err(|_| PiError::PartyPanic("replenisher"))?,
            None => Ok(()),
        }
    }
}

impl Drop for Replenisher {
    fn drop(&mut self) {
        let _ = self.stop_inner();
    }
}

fn replenish_loop(pool: &MaterialPool, low: usize, high: usize) -> Result<()> {
    let mut st = pool.lock();
    loop {
        while !st.shutdown && st.ready.len() >= low {
            st = pool.drained.wait(st).expect("material pool mutex poisoned");
        }
        if st.shutdown {
            return Ok(());
        }
        while st.ready.len() < high && !st.shutdown {
            let seed = pool.draw_seed(&mut st);
            drop(st);
            let start = Instant::now();
            let material = pool.core.deal(seed)?;
            let elapsed = start.elapsed().as_secs_f64();
            st = pool.lock();
            st.ledger.generated_offline += 1;
            credit_generation(&mut st.ledger, &material.counts, elapsed);
            push_ready(&mut st, material)?;
            drop(st);
            pool.restocked.notify_all();
            st = pool.lock();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::specs_of;
    use crate::plan::compile;
    use c2pi_nn::layers::{Conv2d, Relu};
    use c2pi_nn::Sequential;
    use std::time::Duration;

    fn tiny_core() -> Arc<SessionCore> {
        let mut seq = Sequential::new();
        seq.push(Conv2d::new(1, 2, 3, 1, 1, 1, 1));
        seq.push(Relu::new());
        let cfg = PiConfig::default();
        let plan = compile(&specs_of(&seq), (1, 6, 6), cfg.fixed).unwrap();
        Arc::new(SessionCore { plan, cfg, backend: cfg.backend.engine() })
    }

    fn wait_until(deadline: Duration, mut cond: impl FnMut() -> bool) -> bool {
        let start = Instant::now();
        while start.elapsed() < deadline {
            if cond() {
                return true;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        cond()
    }

    #[test]
    fn ledger_tracks_offline_and_inline_paths() {
        let pool = MaterialPool::new(tiny_core());
        pool.preprocess(2).unwrap();
        assert_eq!(pool.pooled(), 2);
        let _a = pool.take().unwrap();
        let _b = pool.take().unwrap();
        let _c = pool.take().unwrap(); // dry → inline
        let l = pool.ledger();
        assert_eq!(l.generated_offline, 2);
        assert_eq!(l.generated_inline, 1);
        assert_eq!(l.consumed, 3);
        assert_eq!(l.available, 0);
        assert_eq!(l.generated_offline + l.generated_inline, l.consumed + l.available);
    }

    #[test]
    fn seeds_are_the_sequential_stream_regardless_of_path() {
        // Pool path and a bare SeedSequence must hand out the same
        // deterministic seeds in order.
        let core = tiny_core();
        let mut reference = SeedSequence::new(core.cfg.dealer_seed, b"c2pi/session/dealer");
        let want: Vec<u64> = (0..4).map(|_| reference.next()).collect();
        let pool = MaterialPool::new(core);
        pool.preprocess(2).unwrap();
        let got: Vec<u64> = (0..4).map(|_| pool.take().unwrap().seed).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn replenisher_keeps_pool_above_watermark_and_stops_cleanly() {
        let pool = Arc::new(MaterialPool::new(tiny_core()));
        let replenisher = Replenisher::spawn(Arc::clone(&pool), 2, 5);
        // Empty pool is below the watermark: it must fill to `high`.
        assert!(
            wait_until(Duration::from_secs(20), || pool.pooled() >= 5),
            "replenisher never reached the high watermark (pooled {})",
            pool.pooled()
        );
        // Drain below the low watermark; it must recover.
        for _ in 0..4 {
            pool.take().unwrap();
        }
        assert!(
            wait_until(Duration::from_secs(20), || pool.pooled() >= 5),
            "replenisher never recovered the watermark (pooled {})",
            pool.pooled()
        );
        let l = pool.ledger();
        assert_eq!(l.generated_inline, 0, "replenisher kept takers off the inline path");
        replenisher.stop().unwrap();
        assert!(pool.is_shut_down());
    }

    #[test]
    fn ledger_accounts_seed_and_expanded_bytes() {
        let pool = MaterialPool::new(tiny_core());
        pool.preprocess(2).unwrap();
        let l = pool.ledger();
        assert!(l.seed_bytes > 0, "dealt seeds have a wire size");
        assert!(l.expanded_bytes > l.seed_bytes, "expansion must outweigh the seed");
        // Per-set seed bytes are tens of bytes, not megabytes.
        assert!(l.seed_bytes / 2 < 1024, "per-set seed bytes {}", l.seed_bytes / 2);
    }

    #[test]
    fn try_take_reports_empty_then_material_then_shutdown() {
        let pool = MaterialPool::new(tiny_core());
        assert!(matches!(pool.try_take().unwrap(), PoolTake::Empty));
        pool.preprocess(2).unwrap();
        assert!(matches!(pool.try_take().unwrap(), PoolTake::Material(_)));
        pool.shutdown();
        // Draining: pooled material still comes back after shutdown.
        assert!(matches!(pool.try_take().unwrap(), PoolTake::Material(_)));
        assert!(matches!(pool.try_take().unwrap(), PoolTake::ShutDown));
    }

    #[test]
    fn take_blocking_distinguishes_restock_from_shutdown() {
        // A blocked taker must come back with material when the pool is
        // restocked, and with ShutDown when the pool shuts down — and a
        // notification that produced nothing (shutdown's own notify on a
        // pool that then restocks) must not confuse it.
        let pool = Arc::new(MaterialPool::new(tiny_core()));
        let taker = {
            let pool = Arc::clone(&pool);
            std::thread::spawn(move || pool.take_blocking().unwrap())
        };
        std::thread::sleep(Duration::from_millis(50));
        pool.preprocess(1).unwrap();
        assert!(matches!(taker.join().unwrap(), PoolTake::Material(_)));

        let blocked = {
            let pool = Arc::clone(&pool);
            std::thread::spawn(move || pool.take_blocking().unwrap())
        };
        std::thread::sleep(Duration::from_millis(50));
        pool.shutdown();
        assert!(matches!(blocked.join().unwrap(), PoolTake::ShutDown));
        let l = pool.ledger();
        assert_eq!(l.generated_offline + l.generated_inline, l.consumed + l.available);
    }

    #[test]
    fn session_fingerprint_separates_deployments() {
        let a = tiny_core();
        let b = tiny_core();
        assert_eq!(a.session_fingerprint(), b.session_fingerprint(), "same deployment");
        let mut cfg = a.cfg;
        cfg.dealer_seed += 1;
        let c = Arc::new(SessionCore { plan: a.plan.clone(), cfg, backend: a.backend.clone() });
        assert_ne!(a.session_fingerprint(), c.session_fingerprint(), "seed must enter");
    }
}
