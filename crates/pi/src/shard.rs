//! Per-core material-pool shards with work-stealing — the offline
//! phase's answer to serving-layer concurrency.
//!
//! A single [`MaterialPool`] serializes every take, refill and store
//! append through one `Mutex`+`Condvar`; fine for eight clients, a hot
//! lock at hundreds. A [`ShardedMaterialPool`] splits that state into
//! `n` full pools (each with its own queue, ledger, condvars and
//! [`MaterialStore`] segment) that share exactly one thing: the
//! [`SeedAllocator`], a mutex over a PRG step and a counter increment.
//! Serving workers map to shards (worker *w* → shard *w mod n*), so in
//! steady state a take touches only its home shard's lock.
//!
//! **Work stealing.** When a worker's home shard runs dry it scans its
//! siblings and takes from the first non-empty one — the hot shard
//! serves from its neighbours' stock while its own replenisher catches
//! up. The steal consumes through the *victim's* pool, so the consumed
//! record lands in the victim's store segment and every shard ledger
//! stays exact; only when every shard is empty does the take report
//! [`PoolTake::Empty`], which the serving layer turns into a typed
//! backpressure frame instead of blocking.
//!
//! **Determinism.** Because all shards draw from the one serialized
//! allocator, the multiset of seeds a sharded deployment consumes is a
//! prefix of the same sequential stream an unsharded session walks —
//! which shard dealt a seed never enters the material, so concurrent
//! outputs are a bit-for-bit permutation of the sequential run's (the
//! `shard_stress` test pins this down). See DESIGN.md §8.
//!
//! **Ledger exactness.** Each shard maintains the pool invariant
//! `generated_offline + generated_inline == consumed + available` under
//! its own lock; the sums a [`ShardedMaterialPool::ledger`] reports
//! therefore satisfy it too, with no cross-shard coordination.

use crate::pool::{MaterialPool, PoolTake, Replenisher, SeedAllocator, SessionCore};
use crate::report::PreprocessLedger;
use crate::store::{MaterialStore, RestoreReport};
use crate::{PiError, Result};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// A fixed set of [`MaterialPool`] shards over one [`SessionCore`] and
/// one shared seed stream. See the [module docs](self) for the
/// concurrency and determinism story.
pub struct ShardedMaterialPool {
    shards: Vec<Arc<MaterialPool>>,
    alloc: Arc<SeedAllocator>,
    /// Cross-shard takes served from a sibling's stock.
    steals: AtomicU64,
    /// Round-robin cursor distributing preprocess batches.
    cursor: AtomicUsize,
}

impl std::fmt::Debug for ShardedMaterialPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedMaterialPool")
            .field("shards", &self.shards.len())
            .field("depths", &self.depths())
            .field("steals", &self.steals())
            .finish()
    }
}

impl ShardedMaterialPool {
    /// Creates `shards` empty pools sharing one seed allocator over
    /// `core`. `shards` is clamped to at least 1.
    pub fn new(core: Arc<SessionCore>, shards: usize) -> Self {
        let alloc = Arc::new(SeedAllocator::new(core.config().dealer_seed));
        let shards = (0..shards.max(1))
            .map(|_| Arc::new(MaterialPool::with_allocator(Arc::clone(&core), Arc::clone(&alloc))))
            .collect();
        ShardedMaterialPool {
            shards,
            alloc,
            steals: AtomicU64::new(0),
            cursor: AtomicUsize::new(0),
        }
    }

    /// The shared immutable session core.
    pub fn core(&self) -> &Arc<SessionCore> {
        self.shards[0].core()
    }

    /// The shared seed allocator.
    pub fn allocator(&self) -> &Arc<SeedAllocator> {
        &self.alloc
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// One shard's pool (for replenishers or per-shard inspection).
    ///
    /// # Panics
    ///
    /// Panics when `i >= shard_count()`.
    pub fn shard(&self, i: usize) -> &Arc<MaterialPool> {
        &self.shards[i]
    }

    /// Offline phase: deals material for `n` future inferences,
    /// distributed round-robin across shards. Thread-safe.
    ///
    /// # Errors
    ///
    /// Propagates dealer errors and store append failures.
    pub fn preprocess(&self, n: usize) -> Result<()> {
        for _ in 0..n {
            let at = self.cursor.fetch_add(1, Ordering::Relaxed) % self.shards.len();
            self.shards[at].preprocess(1)?;
        }
        Ok(())
    }

    /// Pooled-only take for a worker whose home shard is `home` (taken
    /// modulo the shard count): pops the home shard first, then
    /// work-steals from siblings in ring order. Never deals inline and
    /// never blocks — an all-empty result is the serving layer's cue to
    /// shed load with a typed backpressure frame. Reports
    /// [`PoolTake::ShutDown`] only when every shard is shut down and
    /// drained.
    ///
    /// # Errors
    ///
    /// Propagates store append failures.
    pub fn try_take(&self, home: usize) -> Result<PoolTake> {
        let n = self.shards.len();
        let home = home % n;
        let mut shut = 0usize;
        for offset in 0..n {
            let at = (home + offset) % n;
            match self.shards[at].try_take()? {
                PoolTake::Material(m) => {
                    if offset != 0 {
                        self.steals.fetch_add(1, Ordering::Relaxed);
                    }
                    return Ok(PoolTake::Material(m));
                }
                PoolTake::ShutDown => shut += 1,
                PoolTake::Empty => {}
            }
        }
        Ok(if shut == n { PoolTake::ShutDown } else { PoolTake::Empty })
    }

    /// Pooled-only take of up to `n` material sets for one fused batch,
    /// each drawn exactly as [`ShardedMaterialPool::try_take`] would
    /// (home shard first, then work stealing), so a batch of `k`
    /// consumes `k` pool items with every shard ledger exact. Stops at
    /// the first all-empty scan: the returned vector holds however much
    /// stock could cover (possibly empty), and the serving layer sheds
    /// the uncovered members. The flag reports whether the pool is shut
    /// down and drained.
    ///
    /// # Errors
    ///
    /// Propagates store append failures.
    pub fn try_take_n(
        &self,
        home: usize,
        n: usize,
    ) -> Result<(Vec<crate::pool::InferenceMaterial>, bool)> {
        let mut out = Vec::with_capacity(n);
        while out.len() < n {
            match self.try_take(home)? {
                PoolTake::Material(m) => out.push(*m),
                PoolTake::Empty => return Ok((out, false)),
                PoolTake::ShutDown => return Ok((out, true)),
            }
        }
        Ok((out, false))
    }

    /// Cross-shard takes served from a sibling shard's stock so far.
    pub fn steals(&self) -> u64 {
        self.steals.load(Ordering::Relaxed)
    }

    /// Per-shard ready-queue depths, in shard order.
    pub fn depths(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.pooled()).collect()
    }

    /// Total material sets pooled across all shards.
    pub fn pooled(&self) -> usize {
        self.shards.iter().map(|s| s.pooled()).sum()
    }

    /// Per-shard ledger snapshots, in shard order.
    pub fn shard_ledgers(&self) -> Vec<PreprocessLedger> {
        self.shards.iter().map(|s| s.ledger()).collect()
    }

    /// Deployment-wide ledger: the fieldwise sum of every shard's.
    /// Each shard's ledger is exact under its own lock, so the sums
    /// satisfy the same invariant
    /// (`generated_offline + generated_inline == consumed + available`).
    pub fn ledger(&self) -> PreprocessLedger {
        let mut total = PreprocessLedger::default();
        for l in self.shard_ledgers() {
            total.generated_offline += l.generated_offline;
            total.generated_inline += l.generated_inline;
            total.consumed += l.consumed;
            total.available += l.available;
            total.generation_seconds += l.generation_seconds;
            total.base_ots += l.base_ots;
            total.extended_ots += l.extended_ots;
            total.seed_bytes += l.seed_bytes;
            total.expanded_bytes += l.expanded_bytes;
            total.restored += l.restored;
        }
        total
    }

    /// The store segment path for shard `i` under `base` —
    /// `<base>.shard<i>`.
    pub fn segment_path(base: &Path, i: usize) -> PathBuf {
        PathBuf::from(format!("{}.shard{i}", base.display()))
    }

    /// Attaches one [`MaterialStore`] segment per shard
    /// (`<base>.shard<i>`), warm-booting the whole deployment from a
    /// previous process: every segment is replayed first, the shared
    /// seed stream is fast-forwarded *once* to the highest position any
    /// segment recorded, then each shard resumes its own ledger and
    /// re-expands its pending seeds. Aggregates the per-segment reports
    /// (`drawn` is the global watermark, the counts are sums).
    ///
    /// Must be called on a fresh sharded pool, before preprocessing or
    /// serving.
    ///
    /// # Errors
    ///
    /// [`PiError::Store`] on I/O failure or fingerprint mismatch;
    /// [`PiError::BadConfig`] when the pool has already drawn seeds or
    /// has stores attached.
    pub fn attach_stores(&self, base: impl AsRef<Path>) -> Result<RestoreReport> {
        if self.alloc.drawn() != 0 {
            return Err(PiError::BadConfig(
                "attach_stores requires a fresh sharded pool (attach before preprocessing \
                 or serving)"
                    .into(),
            ));
        }
        let fingerprint = self.core().session_fingerprint();
        let mut opened = Vec::with_capacity(self.shards.len());
        let mut watermark = 0u64;
        for i in 0..self.shards.len() {
            let path = Self::segment_path(base.as_ref(), i);
            let (store, scan) = MaterialStore::open(&path, fingerprint)?;
            watermark = watermark.max(scan.drawn);
            opened.push((store, scan));
        }
        self.alloc.fast_forward_to(watermark);
        let mut total = RestoreReport { drawn: watermark, ..Default::default() };
        for (shard, (store, scan)) in self.shards.iter().zip(opened) {
            let report = shard.install_scan(store, scan)?;
            total.restored += report.restored;
            total.records += report.records;
            total.truncated_tail |= report.truncated_tail;
        }
        Ok(total)
    }

    /// Whether every shard has a persistent store segment attached.
    pub fn has_stores(&self) -> bool {
        self.shards.iter().all(|s| s.has_store())
    }

    /// Graceful-drain flush of every shard's store segment (flush
    /// marker + fsync each). No-op for shards without stores.
    ///
    /// # Errors
    ///
    /// Propagates store I/O failures (fails on the first erroring
    /// shard).
    pub fn flush_stores(&self) -> Result<()> {
        for shard in &self.shards {
            shard.flush_store()?;
        }
        Ok(())
    }

    /// Spawns one [`Replenisher`] per shard with the given watermarks
    /// (per shard, not global). Hold the handles for the serving loop's
    /// lifetime; dropping them stops the threads.
    pub fn spawn_replenishers(&self, low: usize, high: usize) -> Vec<Replenisher> {
        self.shards.iter().map(|s| Replenisher::spawn(Arc::clone(s), low, high)).collect()
    }

    /// Signals shutdown to every shard (replenishers and blocking
    /// takers wake up; pooled material can still drain via
    /// [`ShardedMaterialPool::try_take`]).
    pub fn shutdown(&self) {
        for shard in &self.shards {
            shard.shutdown();
        }
    }

    /// Whether every shard is shut down.
    pub fn is_shut_down(&self) -> bool {
        self.shards.iter().all(|s| s.is_shut_down())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{specs_of, PiConfig};
    use crate::plan::compile;
    use c2pi_nn::layers::{Conv2d, Relu};
    use c2pi_nn::Sequential;

    fn tiny_core() -> Arc<SessionCore> {
        let mut seq = Sequential::new();
        seq.push(Conv2d::new(1, 2, 3, 1, 1, 1, 1));
        seq.push(Relu::new());
        let cfg = PiConfig::default();
        let plan = compile(&specs_of(&seq), (1, 6, 6), cfg.fixed).unwrap();
        Arc::new(SessionCore { plan, cfg, backend: cfg.backend.engine() })
    }

    #[test]
    fn preprocess_distributes_round_robin() {
        let pool = ShardedMaterialPool::new(tiny_core(), 3);
        pool.preprocess(7).unwrap();
        assert_eq!(pool.depths(), vec![3, 2, 2]);
        assert_eq!(pool.pooled(), 7);
        let l = pool.ledger();
        assert_eq!(l.generated_offline, 7);
        assert_eq!(l.available, 7);
    }

    #[test]
    fn take_prefers_home_then_steals_then_reports_empty() {
        let pool = ShardedMaterialPool::new(tiny_core(), 2);
        // Load only shard 0.
        pool.shard(0).preprocess(2).unwrap();
        // Home hit: no steal.
        assert!(matches!(pool.try_take(0).unwrap(), PoolTake::Material(_)));
        assert_eq!(pool.steals(), 0);
        // Shard 1 is empty → steal from shard 0.
        assert!(matches!(pool.try_take(1).unwrap(), PoolTake::Material(_)));
        assert_eq!(pool.steals(), 1);
        // Everything empty → backpressure signal, not a block.
        assert!(matches!(pool.try_take(0).unwrap(), PoolTake::Empty));
        let l = pool.ledger();
        assert_eq!(l.consumed, 2);
        assert_eq!(l.generated_offline + l.generated_inline, l.consumed + l.available);
    }

    #[test]
    fn shards_share_one_sequential_seed_stream() {
        // The multiset of seeds a sharded pool hands out must be a
        // prefix of the unsharded stream (order may differ per shard).
        let core = tiny_core();
        let reference = MaterialPool::new(Arc::clone(&core));
        reference.preprocess(6).unwrap();
        let mut want: Vec<u64> = (0..6).map(|_| reference.take().unwrap().seed()).collect();
        want.sort_unstable();

        let pool = ShardedMaterialPool::new(core, 3);
        pool.preprocess(6).unwrap();
        let mut got = Vec::new();
        for home in [2, 0, 1, 1, 0, 2] {
            match pool.try_take(home).unwrap() {
                PoolTake::Material(m) => got.push(m.seed()),
                other => panic!("expected material, got {other:?}"),
            }
        }
        got.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn take_n_covers_what_stock_allows_and_steals_across_shards() {
        let pool = ShardedMaterialPool::new(tiny_core(), 2);
        pool.shard(0).preprocess(1).unwrap();
        pool.shard(1).preprocess(2).unwrap();
        // Ask for 4 with only 3 pooled: partial coverage, not an error.
        let (mats, shut) = pool.try_take_n(0, 4).unwrap();
        assert_eq!(mats.len(), 3);
        assert!(!shut);
        // Two of the three takes crossed shards (home 0 held one item).
        assert_eq!(pool.steals(), 2);
        let l = pool.ledger();
        assert_eq!(l.consumed, 3);
        assert_eq!(l.available, 0);
        assert_eq!(l.generated_offline + l.generated_inline, l.consumed + l.available);
        // Dry pool: empty vector, still not shut down.
        let (mats, shut) = pool.try_take_n(1, 2).unwrap();
        assert!(mats.is_empty());
        assert!(!shut);
        // After shutdown the flag flips.
        pool.shutdown();
        let (mats, shut) = pool.try_take_n(0, 1).unwrap();
        assert!(mats.is_empty());
        assert!(shut);
    }

    #[test]
    fn shutdown_drains_then_reports_shut_down() {
        let pool = ShardedMaterialPool::new(tiny_core(), 2);
        pool.preprocess(1).unwrap();
        pool.shutdown();
        assert!(pool.is_shut_down());
        assert!(matches!(pool.try_take(1).unwrap(), PoolTake::Material(_)));
        assert!(matches!(pool.try_take(1).unwrap(), PoolTake::ShutDown));
    }
}
