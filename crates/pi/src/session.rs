//! Long-lived private-inference sessions with an explicit offline/online
//! phase split.
//!
//! A [`PiSession`] is the per-deployment object a serving system keeps
//! alive: it compiles the crypto prefix once (shape inference, ring
//! encoding of the server's weights), then separates the two protocol
//! phases the paper's systems are built around:
//!
//! * **offline** — [`PiSession::preprocess`] runs the trusted dealer to
//!   generate correlated randomness (masked-linear correlations, Beaver
//!   and bit triples, base OTs for garbling) for `n` *future* inferences,
//!   input-independently;
//! * **online** — [`PiSession::infer`] / [`PiSession::infer_batch`]
//!   consume one pooled material set per input and only pay the cheap
//!   interactive protocol.
//!
//! Internally a session is two shareable parts (see [`crate::pool`]):
//! an immutable [`crate::pool::SessionCore`] and a thread-safe
//! [`MaterialPool`]. [`PiSession`] is the convenient exclusive handle;
//! [`PiSession::into_shared`] (or [`PiSession::shared`]) yields a
//! [`SharedPiSession`] — a cheaply cloneable handle whose inference
//! entry points take `&self`, so any number of threads serve concurrent
//! online inferences against one pool while a
//! [`crate::pool::Replenisher`] keeps it topped up in the background.
//!
//! Every [`crate::report::PiReport`] carries a
//! [`crate::report::PreprocessLedger`] stating whether its run consumed
//! pooled material or had to generate some inline, so benchmarks can
//! report true online latency.
//!
//! Per-inference randomness is forked from the session master seed with
//! a domain-separated PRG stream ([`c2pi_mpc::prg::SeedSequence`]), so
//! batched and sequential execution consume identical seed streams and
//! every inference gets fresh, reproducible masks.
//!
//! The parties talk over whatever [`c2pi_transport::Channel`] the
//! session's [`c2pi_transport::Transport`] produces
//! ([`PiSession::with_transport`]): the in-memory default, an in-line
//! simulated LAN/WAN, or TCP framing. For genuinely separate processes
//! there are two contracts:
//!
//! * lockstep ([`PiSession::infer_client`] / [`PiSession::infer_server`])
//!   — both processes hold identical sessions and consume their pools in
//!   the same order (the `two_party` example binaries);
//! * dealt ([`SharedPiSession::serve_one`] /
//!   [`SharedPiSession::request_one`]) — the server's pool decides which
//!   material each connection gets and *deals* the seed to the client
//!   first, so many concurrent clients can draw from one pool in any
//!   order (the `PiServer` accept loop in `c2pi-core`).

use crate::backend::PiBackendImpl;
use crate::engine::{PiConfig, PiOutcome};
use crate::plan::{compile, Plan, Step, StepData};
use crate::pool::{
    ClientMat, InferenceMaterial, MaterialPool, Replenisher, ServerMat, SessionCore,
};
use crate::report::{OpCounts, PiReport};
use crate::{PiError, Result};
use c2pi_mpc::beaver::truncate_share;
use c2pi_mpc::dealer::DealtSeed;
use c2pi_mpc::prg::Prg;
use c2pi_mpc::ring::{im2col_ring, RingMatrix};
use c2pi_mpc::share::{share_secret, ShareVec};
use c2pi_nn::LayerSpec;
use c2pi_tensor::Tensor;
use c2pi_transport::{Channel, MemTransport, Side, Transport};
use std::sync::Arc;
use std::time::Instant;

/// A long-lived private-inference session over one compiled crypto
/// prefix — the exclusive (`&mut self`) handle. See the
/// [module docs](crate::session) for the phase model and
/// [`SharedPiSession`] for the concurrent-serving handle.
pub struct PiSession {
    shared: SharedPiSession,
}

impl std::fmt::Debug for PiSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PiSession")
            .field("backend", &self.shared.backend_name())
            .field("transport", &self.shared.transport_label())
            .field("steps", &self.shared.step_count())
            .field("pooled", &self.shared.pooled())
            .field("ledger", &self.shared.ledger())
            .finish()
    }
}

/// One party's result of a transport-split inference
/// ([`PiSession::infer_client`] / [`PiSession::infer_server`]): this
/// side's additive share of the boundary activation plus the run's cost
/// report (traffic as seen by this side's channel counter).
#[derive(Debug, Clone)]
pub struct PartyOutcome {
    /// This party's additive share of the boundary activation.
    pub share: ShareVec,
    /// Public shape of the boundary activation.
    pub dims: Vec<usize>,
    /// Cost profile of the run.
    pub report: PiReport,
}

impl PiSession {
    /// Compiles a session for `specs` on `[c, h, w]` inputs, resolving
    /// the backend from `cfg.backend`.
    ///
    /// # Errors
    ///
    /// Returns [`PiError::UnsupportedLayer`] / [`PiError::BadConfig`]
    /// for prefixes the engine cannot execute.
    pub fn new(specs: &[LayerSpec], input_chw: [usize; 3], cfg: PiConfig) -> Result<Self> {
        let backend = cfg.backend.engine();
        Self::with_backend(specs, input_chw, cfg, backend)
    }

    /// Compiles a session with an explicit backend implementation
    /// (custom backends; `cfg.backend` is ignored for dispatch but still
    /// seeds defaults).
    ///
    /// # Errors
    ///
    /// Same as [`PiSession::new`].
    pub fn with_backend(
        specs: &[LayerSpec],
        input_chw: [usize; 3],
        cfg: PiConfig,
        backend: Arc<dyn PiBackendImpl>,
    ) -> Result<Self> {
        let [c, h, w] = input_chw;
        let plan = compile(specs, (c, h, w), cfg.fixed)?;
        let core = Arc::new(SessionCore { plan, cfg, backend });
        let pool = Arc::new(MaterialPool::new(Arc::clone(&core)));
        Ok(PiSession { shared: SharedPiSession { core, pool, transport: Arc::new(MemTransport) } })
    }

    /// Replaces the transport the in-process party threads talk over
    /// (the default is the in-memory pair). Accepts any
    /// [`Transport`] — e.g. `SimTransport::new(NetModel::wan())` to put
    /// WAN latency on the online wall clock, or an
    /// `Arc<dyn Transport>`.
    pub fn with_transport<T: Transport + 'static>(mut self, transport: T) -> Self {
        self.shared = self.shared.with_transport(transport);
        self
    }

    /// Converts this exclusive handle into the cheaply cloneable
    /// [`SharedPiSession`] used for concurrent serving. Pooled material
    /// and the ledger carry over.
    pub fn into_shared(self) -> SharedPiSession {
        self.shared
    }

    /// A shared handle onto the *same* core, pool and ledger as this
    /// session (clones are cheap `Arc` bumps).
    pub fn shared(&self) -> SharedPiSession {
        self.shared.clone()
    }

    /// Label of the active transport (`mem`, `sim-wan`, …).
    pub fn transport_label(&self) -> String {
        self.shared.transport_label()
    }

    /// The backend's engine name.
    pub fn backend_name(&self) -> &'static str {
        self.shared.backend_name()
    }

    /// Engine configuration the session was built with.
    pub fn config(&self) -> &PiConfig {
        self.shared.config()
    }

    /// Number of crypto-prefix steps.
    pub fn step_count(&self) -> usize {
        self.shared.step_count()
    }

    /// Public shape of the boundary activation.
    pub fn out_dims(&self) -> &[usize] {
        &self.shared.core.plan.out_dims
    }

    /// Material sets currently pooled for future inferences.
    pub fn pooled(&self) -> usize {
        self.shared.pooled()
    }

    /// Current preprocessing ledger.
    pub fn ledger(&self) -> crate::report::PreprocessLedger {
        self.shared.ledger()
    }

    /// Offline phase: generates correlated randomness for `n` future
    /// inferences and pools it. Input-independent; run it ahead of
    /// traffic so [`PiSession::infer`] stays on the cheap path.
    ///
    /// # Errors
    ///
    /// Propagates dealer errors (caller shape bugs).
    pub fn preprocess(&mut self, n: usize) -> Result<()> {
        self.shared.preprocess(n)
    }

    /// Online phase: runs one private inference on a `[1, c, h, w]`
    /// input, consuming one pooled material set (generating inline if
    /// the pool is dry).
    ///
    /// # Errors
    ///
    /// Returns engine, shape or protocol errors.
    pub fn infer(&mut self, x: &Tensor) -> Result<PiOutcome> {
        self.shared.infer(x)
    }

    /// Online phase over a batch: one outcome per input, consuming one
    /// pooled material set each. Preprocess at least `xs.len()` sets
    /// first to keep the whole batch on the online path.
    ///
    /// # Errors
    ///
    /// Fails on the first erroring inference.
    pub fn infer_batch(&mut self, xs: &[Tensor]) -> Result<Vec<PiOutcome>> {
        self.shared.infer_batch(xs)
    }

    /// Runs only the **client** party of one inference over an external
    /// channel — the entry point for genuinely separate processes (see
    /// the `two_party` example binaries, which connect
    /// [`c2pi_transport::TcpChannel`]s).
    ///
    /// Both processes must build the session with identical specs and
    /// configuration: the deterministic dealer stands in for the
    /// trusted third party, so equal master seeds make both sides draw
    /// matching correlated-randomness halves (each keeps its own half
    /// and discards the other). For many concurrent clients against one
    /// server pool, use the dealt contract
    /// ([`SharedPiSession::request_one`]) instead.
    ///
    /// # Errors
    ///
    /// Returns [`PiError::BadConfig`] when `ch` is not the client end,
    /// plus the engine, shape and protocol errors of
    /// [`PiSession::infer`].
    pub fn infer_client(&mut self, ch: &dyn Channel, x: &Tensor) -> Result<PartyOutcome> {
        self.shared.infer_client(ch, x)
    }

    /// Runs only the **server** party of one inference over an external
    /// channel. See [`PiSession::infer_client`] for the two-process
    /// contract.
    ///
    /// # Errors
    ///
    /// Returns [`PiError::BadConfig`] when `ch` is not the server end,
    /// plus engine and protocol errors.
    pub fn infer_server(&mut self, ch: &dyn Channel) -> Result<PartyOutcome> {
        self.shared.infer_server(ch)
    }
}

/// The concurrent-serving handle onto one compiled session: an
/// `Arc`-shared immutable [`SessionCore`] plus an `Arc`-shared
/// [`MaterialPool`].
///
/// Clones are cheap and all inference entry points take `&self`, so a
/// serving system hands one clone to each worker thread; they draw
/// material from the one pool with exact ledger accounting while a
/// [`Replenisher`] (spawned via
/// [`SharedPiSession::spawn_replenisher`]) keeps the pool above its low
/// watermark. Obtain one with [`PiSession::into_shared`].
#[derive(Clone)]
pub struct SharedPiSession {
    core: Arc<SessionCore>,
    pool: Arc<MaterialPool>,
    transport: Arc<dyn Transport>,
}

impl std::fmt::Debug for SharedPiSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedPiSession")
            .field("backend", &self.backend_name())
            .field("transport", &self.transport_label())
            .field("steps", &self.step_count())
            .field("pooled", &self.pooled())
            .finish()
    }
}

impl SharedPiSession {
    /// Replaces the transport used by the in-process [`SharedPiSession::infer`]
    /// path.
    pub fn with_transport<T: Transport + 'static>(mut self, transport: T) -> Self {
        self.transport = Arc::new(transport);
        self
    }

    /// The shared immutable session core.
    pub fn core(&self) -> &Arc<SessionCore> {
        &self.core
    }

    /// The shared material pool.
    pub fn pool(&self) -> &Arc<MaterialPool> {
        &self.pool
    }

    /// Label of the active transport (`mem`, `sim-wan`, …).
    pub fn transport_label(&self) -> String {
        self.transport.label()
    }

    /// The backend's engine name.
    pub fn backend_name(&self) -> &'static str {
        self.core.backend.name()
    }

    /// Engine configuration the session was built with.
    pub fn config(&self) -> &PiConfig {
        &self.core.cfg
    }

    /// Number of crypto-prefix steps.
    pub fn step_count(&self) -> usize {
        self.core.plan.steps.len()
    }

    /// Public shape of the boundary activation.
    pub fn out_dims(&self) -> &[usize] {
        &self.core.plan.out_dims
    }

    /// Material sets currently pooled for future inferences.
    pub fn pooled(&self) -> usize {
        self.pool.pooled()
    }

    /// Current preprocessing ledger.
    pub fn ledger(&self) -> crate::report::PreprocessLedger {
        self.pool.ledger()
    }

    /// Offline phase for `n` future inferences (thread-safe; see
    /// [`MaterialPool::preprocess`]).
    ///
    /// # Errors
    ///
    /// Propagates dealer errors.
    pub fn preprocess(&self, n: usize) -> Result<()> {
        self.pool.preprocess(n)
    }

    /// Spawns the background offline-phase thread keeping this
    /// session's pool between `low` and `high` material sets (see
    /// [`Replenisher`]). Hold the returned handle for the lifetime of
    /// the serving loop; dropping it stops the thread.
    pub fn spawn_replenisher(&self, low: usize, high: usize) -> Replenisher {
        Replenisher::spawn(Arc::clone(&self.pool), low, high)
    }

    fn check_input(&self, x: &Tensor) -> Result<()> {
        let (_, c, h, w) = x.shape().as_nchw()?;
        if (c, h, w) != self.core.plan.in_chw {
            return Err(PiError::BadConfig(format!(
                "session compiled for {:?} inputs, got [{c}, {h}, {w}]",
                self.core.plan.in_chw
            )));
        }
        Ok(())
    }

    /// Online phase: one private inference on a `[1, c, h, w]` input,
    /// with both parties running as threads of this process. Safe to
    /// call from many threads at once — concurrent calls draw from the
    /// one shared pool.
    ///
    /// # Errors
    ///
    /// Returns engine, shape or protocol errors.
    pub fn infer(&self, x: &Tensor) -> Result<PiOutcome> {
        self.check_input(x)?;
        let material = self.pool.take()?;
        let InferenceMaterial { seed, cmats, smats, counts } = material;
        let (cep, sep, counter) = self.transport.pair()?;
        let plan = &self.core.plan;
        let cfg = self.core.cfg;
        let backend = &*self.core.backend;
        let start = Instant::now();
        let (client_res, server_res) = std::thread::scope(|scope| {
            let server =
                scope.spawn(move || server_thread(&*sep, plan, smats, &cfg, backend, seed));
            let client = client_thread(&*cep, plan, cmats, x, &cfg, backend, seed);
            let server = server.join().map_err(|_| PiError::PartyPanic("server"));
            (client, server)
        });
        let online_seconds = start.elapsed().as_secs_f64();
        let client_share = client_res?;
        let server_share = server_res??;
        let online = counter.snapshot();
        let model = self.core.backend.cost_model();
        let offline = model.offline_traffic(&counts);
        let offline_seconds = model.offline_seconds(&counts);
        Ok(PiOutcome {
            client_share,
            server_share,
            dims: self.core.plan.out_dims.clone(),
            report: PiReport {
                backend: self.core.backend.name(),
                online,
                offline,
                online_seconds,
                offline_seconds,
                counts,
                preprocessing: self.ledger(),
            },
        })
    }

    /// Online phase over a batch: one outcome per input.
    ///
    /// # Errors
    ///
    /// Fails on the first erroring inference.
    pub fn infer_batch(&self, xs: &[Tensor]) -> Result<Vec<PiOutcome>> {
        xs.iter().map(|x| self.infer(x)).collect()
    }

    /// Online phase over a **fused** batch through the dealt contract:
    /// one coalesced protocol run serves all of `xs` — the server party
    /// walks every member's layers together
    /// ([`SessionCore::serve_batch_prepared`]), amortizing its per-layer
    /// compute across the batch, while each member keeps its own
    /// channel, pool item, seed and masks. One in-process client thread
    /// per member plays the dealt-contract client
    /// (receive [`DealtSeed`], expand, run the online protocol).
    ///
    /// Per-member results are bit-for-bit what `xs.len()` separate
    /// [`SharedPiSession::infer`] calls would produce — pinned by the
    /// session tests — because fusing changes only *when* the server
    /// computes, never *what* any member's transcript contains.
    ///
    /// # Errors
    ///
    /// Returns engine, shape or protocol errors; one member's failure
    /// fails the whole fused run.
    pub fn infer_batch_dealt(&self, xs: &[Tensor]) -> Result<Vec<PiOutcome>> {
        if xs.is_empty() {
            return Err(PiError::BadConfig("infer_batch_dealt over an empty batch".into()));
        }
        for x in xs {
            self.check_input(x)?;
        }
        let k = xs.len();
        let mut materials = Vec::with_capacity(k);
        for _ in 0..k {
            materials.push(self.pool.take()?);
        }
        let counts_per: Vec<OpCounts> = materials.iter().map(|m| m.counts.clone()).collect();
        let mut ceps = Vec::with_capacity(k);
        let mut seps = Vec::with_capacity(k);
        let mut counters = Vec::with_capacity(k);
        for _ in 0..k {
            let (cep, sep, counter) = self.transport.pair()?;
            ceps.push(cep);
            seps.push(sep);
            counters.push(counter);
        }
        let core = &self.core;
        let start = Instant::now();
        let (client_res, server_res) = std::thread::scope(|scope| {
            let server = scope.spawn(move || {
                let eps: Vec<&dyn Channel> = seps.iter().map(|s| &**s).collect();
                core.serve_batch_prepared(&eps, materials)
            });
            let clients: Vec<_> = ceps
                .into_iter()
                .zip(xs)
                .map(|(cep, x)| {
                    scope.spawn(move || -> Result<ShareVec> {
                        let dealt = DealtSeed::decode(&cep.recv_bytes()?)?;
                        if dealt != core.dealt_seed(dealt.seed) {
                            return Err(PiError::BadConfig(
                                "dealt seed was not produced for this deployment".into(),
                            ));
                        }
                        let InferenceMaterial { seed, cmats, .. } = core.deal(dealt.seed)?;
                        client_thread(&*cep, &core.plan, cmats, x, &core.cfg, &*core.backend, seed)
                    })
                })
                .collect();
            let client_res: Vec<Result<ShareVec>> = clients
                .into_iter()
                .map(|h| h.join().map_err(|_| PiError::PartyPanic("client"))?)
                .collect();
            let server_res = server.join().map_err(|_| PiError::PartyPanic("server"));
            (client_res, server_res)
        });
        let online_seconds = start.elapsed().as_secs_f64();
        let server_shares = server_res??;
        let model = self.core.backend.cost_model();
        let ledger = self.ledger();
        client_res
            .into_iter()
            .zip(server_shares)
            .zip(counts_per)
            .zip(counters)
            .map(|(((client_share, server_share), counts), counter)| {
                Ok(PiOutcome {
                    client_share: client_share?,
                    server_share,
                    dims: self.core.plan.out_dims.clone(),
                    report: PiReport {
                        backend: self.core.backend.name(),
                        online: counter.snapshot(),
                        offline: model.offline_traffic(&counts),
                        online_seconds,
                        offline_seconds: model.offline_seconds(&counts),
                        counts,
                        preprocessing: ledger,
                    },
                })
            })
            .collect()
    }

    /// Lockstep client party over an external channel (see
    /// [`PiSession::infer_client`]).
    ///
    /// # Errors
    ///
    /// Returns [`PiError::BadConfig`] when `ch` is not the client end,
    /// plus engine, shape and protocol errors.
    pub fn infer_client(&self, ch: &dyn Channel, x: &Tensor) -> Result<PartyOutcome> {
        if ch.side() != Side::Client {
            return Err(PiError::BadConfig("infer_client needs the client channel end".into()));
        }
        self.check_input(x)?;
        let InferenceMaterial { seed, cmats, smats: _, counts } = self.pool.take()?;
        let before = ch.counter().snapshot();
        let start = Instant::now();
        let share = client_thread(
            ch,
            &self.core.plan,
            cmats,
            x,
            &self.core.cfg,
            &*self.core.backend,
            seed,
        )?;
        Ok(self.party_outcome(share, counts, ch, before, start.elapsed().as_secs_f64()))
    }

    /// Lockstep server party over an external channel (see
    /// [`PiSession::infer_server`]).
    ///
    /// # Errors
    ///
    /// Returns [`PiError::BadConfig`] when `ch` is not the server end,
    /// plus engine and protocol errors.
    pub fn infer_server(&self, ch: &dyn Channel) -> Result<PartyOutcome> {
        if ch.side() != Side::Server {
            return Err(PiError::BadConfig("infer_server needs the server channel end".into()));
        }
        let InferenceMaterial { seed, cmats: _, smats, counts } = self.pool.take()?;
        let before = ch.counter().snapshot();
        let start = Instant::now();
        let share =
            server_thread(ch, &self.core.plan, smats, &self.core.cfg, &*self.core.backend, seed)?;
        Ok(self.party_outcome(share, counts, ch, before, start.elapsed().as_secs_f64()))
    }

    /// **Dealt contract, server side**: serves one inference to the
    /// client on `ch`. Takes one material set from the shared pool,
    /// *deals* its compact [`DealtSeed`] to the client as the first
    /// frame (the deterministic dealer standing in for the trusted
    /// third party delivering the client's correlated-randomness half —
    /// seed-compressed, so the frame is tens of bytes regardless of how
    /// large the expanded material is), then runs the server party of
    /// the online protocol.
    ///
    /// This is the entry point a concurrent accept loop (one worker per
    /// connection) calls against one shared pool — material is assigned
    /// per connection in pool order, so clients need no coordination.
    ///
    /// # Errors
    ///
    /// Returns [`PiError::BadConfig`] when `ch` is not the server end,
    /// plus engine and protocol errors.
    pub fn serve_one(&self, ch: &dyn Channel) -> Result<PartyOutcome> {
        if ch.side() != Side::Server {
            return Err(PiError::BadConfig("serve_one needs the server channel end".into()));
        }
        let material = self.pool.take()?;
        let before = ch.counter().snapshot();
        let start = Instant::now();
        ch.send_bytes(&self.core.dealt_seed(material.seed).encode())?;
        let InferenceMaterial { seed, cmats: _, smats, counts } = material;
        let share =
            server_thread(ch, &self.core.plan, smats, &self.core.cfg, &*self.core.backend, seed)?;
        Ok(self.party_outcome(share, counts, ch, before, start.elapsed().as_secs_f64()))
    }

    /// **Dealt contract, client side**: requests one inference from a
    /// server running [`SharedPiSession::serve_one`] on the other end of
    /// `ch`. Receives the compact [`DealtSeed`], validates that it was
    /// dealt for this exact deployment (nonce and plan shape), expands
    /// this party's correlated-randomness half from it (dealer time on
    /// the client's critical path, recorded as inline in this session's
    /// ledger), and runs the client party of the online protocol.
    ///
    /// Both processes must compile their sessions from identical specs
    /// and configuration — only the seed-compressed dealt artifact
    /// travels on the wire.
    ///
    /// # Errors
    ///
    /// Returns [`PiError::BadConfig`] when `ch` is not the client end or
    /// the peer's handshake is malformed, plus engine, shape and
    /// protocol errors.
    pub fn request_one(&self, ch: &dyn Channel, x: &Tensor) -> Result<PartyOutcome> {
        if ch.side() != Side::Client {
            return Err(PiError::BadConfig("request_one needs the client channel end".into()));
        }
        self.check_input(x)?;
        let before = ch.counter().snapshot();
        let dealt = DealtSeed::decode(&ch.recv_bytes()?)?;
        if dealt != self.core.dealt_seed(dealt.seed) {
            return Err(PiError::BadConfig(
                "dealt seed was not produced for this deployment (backend, plan shape \
                 or master configuration differ)"
                    .into(),
            ));
        }
        let deal_start = Instant::now();
        let InferenceMaterial { seed, cmats, smats: _, counts } = self.core.deal(dealt.seed)?;
        self.pool.note_dealt_inline(deal_start.elapsed().as_secs_f64(), &counts);
        let start = Instant::now();
        let share = client_thread(
            ch,
            &self.core.plan,
            cmats,
            x,
            &self.core.cfg,
            &*self.core.backend,
            seed,
        )?;
        Ok(self.party_outcome(share, counts, ch, before, start.elapsed().as_secs_f64()))
    }

    fn party_outcome(
        &self,
        share: ShareVec,
        counts: OpCounts,
        ch: &dyn Channel,
        before: c2pi_transport::TrafficSnapshot,
        online_seconds: f64,
    ) -> PartyOutcome {
        let model = self.core.backend.cost_model();
        let offline = model.offline_traffic(&counts);
        let offline_seconds = model.offline_seconds(&counts);
        PartyOutcome {
            share,
            dims: self.core.plan.out_dims.clone(),
            report: PiReport {
                backend: self.core.backend.name(),
                online: ch.counter().snapshot().since(&before),
                offline,
                online_seconds,
                offline_seconds,
                counts,
                preprocessing: self.ledger(),
            },
        }
    }
}

impl SessionCore {
    /// **Dealt contract, server side, caller-supplied material**: like
    /// [`SharedPiSession::serve_one`] but over material the caller
    /// already took from a pool — the entry point for serving layers
    /// that separate pool policy (sharding, work stealing, backpressure)
    /// from protocol execution, such as the `c2pi-core` reactor. Deals
    /// the compact [`DealtSeed`] as the first frame, then runs the
    /// server party; returns this side's share of the boundary
    /// activation (the caller sends it to the client to reconstruct).
    ///
    /// # Errors
    ///
    /// Returns [`PiError::BadConfig`] when `ch` is not the server end,
    /// plus engine and protocol errors. The material is consumed either
    /// way.
    pub fn serve_prepared(
        &self,
        ch: &dyn Channel,
        material: InferenceMaterial,
    ) -> Result<ShareVec> {
        if ch.side() != Side::Server {
            return Err(PiError::BadConfig("serve_prepared needs the server channel end".into()));
        }
        ch.send_bytes(&self.dealt_seed(material.seed).encode())?;
        let InferenceMaterial { seed, cmats: _, smats, counts: _ } = material;
        server_thread(ch, &self.plan, smats, &self.cfg, &*self.backend, seed)
    }

    /// **Dealt contract, fused batch**: like
    /// [`SessionCore::serve_prepared`] over `k` members at once — one
    /// caller-supplied material set per channel, each dealt to its
    /// member as the first frame, then one batched server walk
    /// (`server_thread_batch`) that fuses the per-layer compute while
    /// keeping every member's wire transcript, masks and seed stream
    /// exactly what a solo [`SessionCore::serve_prepared`] run would
    /// have produced. A batch of one delegates to the solo path, so
    /// `max_batch = 1` serving is *the same code*, not merely
    /// equivalent code.
    ///
    /// # Errors
    ///
    /// Returns [`PiError::BadConfig`] on arity mismatches or a
    /// non-server channel end, plus engine and protocol errors — one
    /// member's failure fails the whole fused run. The material is
    /// consumed either way.
    pub fn serve_batch_prepared(
        &self,
        chs: &[&dyn Channel],
        materials: Vec<InferenceMaterial>,
    ) -> Result<Vec<ShareVec>> {
        let k = chs.len();
        if k == 0 || materials.len() != k {
            return Err(PiError::BadConfig(format!(
                "serve_batch_prepared over {k} channels, {} material sets",
                materials.len()
            )));
        }
        if k == 1 {
            let mut materials = materials;
            let only = materials.pop().expect("len checked above");
            return Ok(vec![self.serve_prepared(chs[0], only)?]);
        }
        if chs.iter().any(|ch| ch.side() != Side::Server) {
            return Err(PiError::BadConfig(
                "serve_batch_prepared needs server channel ends".into(),
            ));
        }
        let mut seeds = Vec::with_capacity(k);
        let mut smats_all = Vec::with_capacity(k);
        for (ch, material) in chs.iter().zip(materials) {
            ch.send_bytes(&self.dealt_seed(material.seed).encode())?;
            let InferenceMaterial { seed, cmats: _, smats, counts: _ } = material;
            seeds.push(seed);
            smats_all.push(smats);
        }
        server_thread_batch(chs, &self.plan, smats_all, &self.cfg, &*self.backend, &seeds)
    }
}

/// Gathers 2×2 window elements of a `[c, h, w]` share into four parallel
/// index lists (public permutation, applied by both parties).
fn pool_windows(c: usize, h: usize, w: usize) -> Vec<[usize; 4]> {
    let mut idx = Vec::with_capacity(c * (h / 2) * (w / 2));
    for ch in 0..c {
        let plane = ch * h * w;
        for oy in 0..h / 2 {
            for ox in 0..w / 2 {
                let base = plane + 2 * oy * w + 2 * ox;
                idx.push([base, base + 1, base + w, base + w + 1]);
            }
        }
    }
    idx
}

fn gather(share: &ShareVec, idx: &[[usize; 4]]) -> ShareVec {
    let mut out = Vec::with_capacity(idx.len() * 4);
    for quad in idx {
        for &i in quad {
            out.push(share.as_raw()[i]);
        }
    }
    ShareVec::from_raw(out)
}

fn avg_pool_share(
    share: &ShareVec,
    (c, h, w): (usize, usize, usize),
    (window, stride): (usize, usize),
    is_client: bool,
    fp: c2pi_mpc::FixedPoint,
) -> ShareVec {
    let oh = (h - window) / stride + 1;
    let ow = (w - window) / stride + 1;
    let coeff = fp.encode(1.0 / (window * window) as f32);
    let mut out = Vec::with_capacity(c * oh * ow);
    for ch in 0..c {
        let plane = ch * h * w;
        for oy in 0..oh {
            for ox in 0..ow {
                let mut acc = 0u64;
                for ky in 0..window {
                    for kx in 0..window {
                        acc = acc.wrapping_add(
                            share.as_raw()[plane + (oy * stride + ky) * w + ox * stride + kx],
                        );
                    }
                }
                out.push(acc.wrapping_mul(coeff));
            }
        }
    }
    truncate_share(&ShareVec::from_raw(out), is_client, fp)
}

pub(crate) fn client_thread(
    ep: &dyn Channel,
    plan: &Plan,
    mats: Vec<ClientMat>,
    x: &Tensor,
    cfg: &PiConfig,
    backend: &dyn PiBackendImpl,
    seed: u64,
) -> Result<ShareVec> {
    let fp = cfg.fixed;
    // Share the input: keep x0, send x1.
    let secret = fp.encode_tensor(x);
    let mut prg = Prg::from_u64(seed ^ 0xC11E_57A9);
    let (x0, x1) = share_secret(&secret, &mut prg);
    ep.send_u64s(x1.as_raw())?;
    let mut cur = x0;
    for (step, mat) in plan.steps.iter().zip(mats) {
        match (step, mat) {
            (Step::Conv { c, h, w, geom }, ClientMat::Lin(corr)) => {
                let cols = im2col_ring(cur.as_raw(), *c, *h, *w, *geom)?;
                let y = backend.linear_online_client(ep, &cols, &corr)?;
                cur = truncate_share(&ShareVec::from_raw(y.into_vec()), true, fp);
            }
            (Step::Fc { k }, ClientMat::Lin(corr)) => {
                let xm = RingMatrix::from_vec(cur.as_raw().to_vec(), *k, 1)?;
                let y = backend.linear_online_client(ep, &xm, &corr)?;
                cur = truncate_share(&ShareVec::from_raw(y.into_vec()), true, fp);
            }
            (Step::Relu { n: _ }, ClientMat::Nl(material)) => {
                cur = backend.relu_online(ep, Side::Client, &cur, material, cfg, &mut prg)?;
            }
            (Step::MaxPool { c, h, w }, ClientMat::Nl(material)) => {
                let idx = pool_windows(*c, *h, *w);
                let quads = gather(&cur, &idx);
                cur = backend.maxpool_online(ep, Side::Client, &quads, material, cfg, &mut prg)?;
            }
            (Step::AvgPool { c, h, w, window, stride }, ClientMat::None) => {
                cur = avg_pool_share(&cur, (*c, *h, *w), (*window, *stride), true, fp);
            }
            (Step::Flatten, ClientMat::None) => {}
            (Step::Affine, ClientMat::Affine(corr)) => {
                let y = c2pi_mpc::beaver::affine_client(ep, &cur, &corr)?;
                cur = truncate_share(&y, true, fp);
            }
            _ => return Err(PiError::BadConfig("plan/material mismatch (client)".into())),
        }
    }
    Ok(cur)
}

pub(crate) fn server_thread(
    ep: &dyn Channel,
    plan: &Plan,
    mats: Vec<ServerMat>,
    cfg: &PiConfig,
    backend: &dyn PiBackendImpl,
    seed: u64,
) -> Result<ShareVec> {
    let fp = cfg.fixed;
    let mut prg = Prg::from_u64(seed ^ 0x5E2F_E27A);
    let mut cur = ShareVec::from_raw(ep.recv_u64s()?);
    for ((step, data), mat) in plan.steps.iter().zip(plan.data.iter()).zip(mats) {
        match (step, data, mat) {
            (
                Step::Conv { c, h, w, geom },
                StepData::Lin { w: w_ring, bias2f, .. },
                ServerMat::Lin(corr),
            ) => {
                let cols = im2col_ring(cur.as_raw(), *c, *h, *w, *geom)?;
                let mut y = backend.linear_online_server(ep, w_ring, &cols, &corr)?;
                let oh_ow = y.cols();
                for (row, &b) in y.as_mut_slice().chunks_exact_mut(oh_ow).zip(bias2f.iter()) {
                    for v in row {
                        *v = v.wrapping_add(b);
                    }
                }
                cur = truncate_share(&ShareVec::from_raw(y.into_vec()), false, fp);
            }
            (Step::Fc { k }, StepData::Lin { w: w_ring, bias2f, .. }, ServerMat::Lin(corr)) => {
                let xm = RingMatrix::from_vec(cur.as_raw().to_vec(), *k, 1)?;
                let mut y = backend.linear_online_server(ep, w_ring, &xm, &corr)?;
                for (v, &b) in y.as_mut_slice().iter_mut().zip(bias2f.iter()) {
                    *v = v.wrapping_add(b);
                }
                cur = truncate_share(&ShareVec::from_raw(y.into_vec()), false, fp);
            }
            (Step::Relu { n: _ }, StepData::None, ServerMat::Nl(material)) => {
                cur = backend.relu_online(ep, Side::Server, &cur, material, cfg, &mut prg)?;
            }
            (Step::MaxPool { c, h, w }, StepData::None, ServerMat::Nl(material)) => {
                let idx = pool_windows(*c, *h, *w);
                let quads = gather(&cur, &idx);
                cur = backend.maxpool_online(ep, Side::Server, &quads, material, cfg, &mut prg)?;
            }
            (Step::AvgPool { c, h, w, window, stride }, StepData::None, ServerMat::None) => {
                cur = avg_pool_share(&cur, (*c, *h, *w), (*window, *stride), false, fp);
            }
            (Step::Flatten, StepData::None, ServerMat::None) => {}
            (Step::Affine, StepData::Affine { scale, shift2f }, ServerMat::Affine(corr)) => {
                let y = c2pi_mpc::beaver::affine_server(ep, scale, &cur, &corr)?;
                let shifted: Vec<u64> = y
                    .as_raw()
                    .iter()
                    .zip(shift2f.iter())
                    .map(|(&v, &s)| v.wrapping_add(s))
                    .collect();
                cur = truncate_share(&ShareVec::from_raw(shifted), false, fp);
            }
            _ => return Err(PiError::BadConfig("plan/material mismatch (server)".into())),
        }
    }
    Ok(cur)
}

fn batch_mismatch() -> PiError {
    PiError::BadConfig("plan/material mismatch (batched server)".into())
}

fn lin_mats(mats: Vec<ServerMat>) -> Result<Vec<c2pi_mpc::dealer::LinearCorrServer>> {
    mats.into_iter()
        .map(|m| if let ServerMat::Lin(c) = m { Ok(c) } else { Err(batch_mismatch()) })
        .collect()
}

fn nl_mats(mats: Vec<ServerMat>) -> Result<Vec<crate::backend::NlMaterial>> {
    mats.into_iter()
        .map(|m| if let ServerMat::Nl(c) = m { Ok(c) } else { Err(batch_mismatch()) })
        .collect()
}

/// The fused server party: walks the plan **once** for `k` members,
/// calling the backend's batched per-layer hooks so the server-side
/// compute of each layer spans the whole batch (column-stacked matmuls,
/// one parallel GC label-selection region), while every member keeps its
/// own channel, material, masks, and PRG stream (seeded exactly as
/// [`server_thread`] seeds a solo run).
///
/// Member order is served deterministically (slice order) at every
/// flight; per-member sequential sub-loops are deadlock-free because
/// clients progress independently and flights buffer in the transport.
pub(crate) fn server_thread_batch(
    eps: &[&dyn Channel],
    plan: &Plan,
    mats: Vec<Vec<ServerMat>>,
    cfg: &PiConfig,
    backend: &dyn PiBackendImpl,
    seeds: &[u64],
) -> Result<Vec<ShareVec>> {
    let k = eps.len();
    if k == 0 || mats.len() != k || seeds.len() != k {
        return Err(PiError::BadConfig(format!(
            "batched server over {k} channels, {} material sets, {} seeds",
            mats.len(),
            seeds.len()
        )));
    }
    let fp = cfg.fixed;
    let mut prgs: Vec<Prg> = seeds.iter().map(|&s| Prg::from_u64(s ^ 0x5E2F_E27A)).collect();
    let mut curs = Vec::with_capacity(k);
    for ep in eps {
        curs.push(ShareVec::from_raw(ep.recv_u64s()?));
    }
    let mut iters: Vec<std::vec::IntoIter<ServerMat>> =
        mats.into_iter().map(Vec::into_iter).collect();
    for (step, data) in plan.steps.iter().zip(plan.data.iter()) {
        let step_mats: Vec<ServerMat> = iters
            .iter_mut()
            .map(|it| it.next().ok_or_else(batch_mismatch))
            .collect::<Result<_>>()?;
        match (step, data) {
            (Step::Conv { c, h, w, geom }, StepData::Lin { w: w_ring, bias2f, .. }) => {
                let corrs = lin_mats(step_mats)?;
                let mut cols = Vec::with_capacity(k);
                for cur in &curs {
                    cols.push(im2col_ring(cur.as_raw(), *c, *h, *w, *geom)?);
                }
                let corr_refs: Vec<&c2pi_mpc::dealer::LinearCorrServer> = corrs.iter().collect();
                let ys = backend.linear_online_server_batch(eps, w_ring, &cols, &corr_refs)?;
                curs = ys
                    .into_iter()
                    .map(|mut y| {
                        let oh_ow = y.cols();
                        for (row, &b) in y.as_mut_slice().chunks_exact_mut(oh_ow).zip(bias2f.iter())
                        {
                            for v in row {
                                *v = v.wrapping_add(b);
                            }
                        }
                        truncate_share(&ShareVec::from_raw(y.into_vec()), false, fp)
                    })
                    .collect();
            }
            (Step::Fc { k: rows }, StepData::Lin { w: w_ring, bias2f, .. }) => {
                let corrs = lin_mats(step_mats)?;
                let mut xms = Vec::with_capacity(k);
                for cur in &curs {
                    xms.push(RingMatrix::from_vec(cur.as_raw().to_vec(), *rows, 1)?);
                }
                let corr_refs: Vec<&c2pi_mpc::dealer::LinearCorrServer> = corrs.iter().collect();
                let ys = backend.linear_online_server_batch(eps, w_ring, &xms, &corr_refs)?;
                curs = ys
                    .into_iter()
                    .map(|mut y| {
                        for (v, &b) in y.as_mut_slice().iter_mut().zip(bias2f.iter()) {
                            *v = v.wrapping_add(b);
                        }
                        truncate_share(&ShareVec::from_raw(y.into_vec()), false, fp)
                    })
                    .collect();
            }
            (Step::Relu { n: _ }, StepData::None) => {
                let materials = nl_mats(step_mats)?;
                curs = backend.relu_online_batch(
                    eps,
                    Side::Server,
                    &curs,
                    materials,
                    cfg,
                    &mut prgs,
                )?;
            }
            (Step::MaxPool { c, h, w }, StepData::None) => {
                let materials = nl_mats(step_mats)?;
                let idx = pool_windows(*c, *h, *w);
                let quads: Vec<ShareVec> = curs.iter().map(|cur| gather(cur, &idx)).collect();
                curs = backend.maxpool_online_batch(
                    eps,
                    Side::Server,
                    &quads,
                    materials,
                    cfg,
                    &mut prgs,
                )?;
            }
            (Step::AvgPool { c, h, w, window, stride }, StepData::None) => {
                if step_mats.iter().any(|m| !matches!(m, ServerMat::None)) {
                    return Err(batch_mismatch());
                }
                curs = curs
                    .iter()
                    .map(|cur| avg_pool_share(cur, (*c, *h, *w), (*window, *stride), false, fp))
                    .collect();
            }
            (Step::Flatten, StepData::None) => {
                if step_mats.iter().any(|m| !matches!(m, ServerMat::None)) {
                    return Err(batch_mismatch());
                }
            }
            (Step::Affine, StepData::Affine { scale, shift2f }) => {
                let corrs: Vec<_> =
                    step_mats
                        .into_iter()
                        .map(|m| {
                            if let ServerMat::Affine(c) = m {
                                Ok(c)
                            } else {
                                Err(batch_mismatch())
                            }
                        })
                        .collect::<Result<Vec<_>>>()?;
                curs = curs
                    .iter()
                    .zip(eps)
                    .zip(&corrs)
                    .map(|((cur, ep), corr)| {
                        let y = c2pi_mpc::beaver::affine_server(*ep, scale, cur, corr)?;
                        let shifted: Vec<u64> = y
                            .as_raw()
                            .iter()
                            .zip(shift2f.iter())
                            .map(|(&v, &s)| v.wrapping_add(s))
                            .collect();
                        Ok(truncate_share(&ShareVec::from_raw(shifted), false, fp))
                    })
                    .collect::<Result<_>>()?;
            }
            _ => return Err(batch_mismatch()),
        }
    }
    Ok(curs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{specs_of, PiBackend};
    use c2pi_nn::layers::{Conv2d, MaxPool2d, Relu};
    use c2pi_nn::Sequential;

    fn tiny_prefix() -> Sequential {
        let mut s = Sequential::new();
        s.push(Conv2d::new(1, 3, 3, 1, 1, 1, 1));
        s.push(Relu::new());
        s.push(MaxPool2d::new(2, 2));
        s
    }

    fn assert_close(a: &Tensor, b: &Tensor, tol: f32) {
        assert_eq!(a.dims(), b.dims());
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((x - y).abs() < tol, "{x} vs {y}");
        }
    }

    #[test]
    fn preprocessed_and_inline_inferences_agree_with_plaintext() {
        let seq = tiny_prefix();
        let x = Tensor::rand_uniform(&[1, 1, 8, 8], -1.0, 1.0, 3);
        let plain = seq.forward_eval(&x).unwrap();
        let cfg = PiConfig::default();
        let mut session = PiSession::new(&specs_of(&seq), [1, 8, 8], cfg).unwrap();
        session.preprocess(1).unwrap();
        let pooled = session.infer(&x).unwrap();
        assert_close(&plain, &pooled.reconstruct(cfg.fixed).unwrap(), 0.02);
        assert_eq!(pooled.report.preprocessing.generated_offline, 1);
        assert_eq!(pooled.report.preprocessing.generated_inline, 0);
        // Pool now dry: the next inference generates inline and says so.
        let inline = session.infer(&x).unwrap();
        assert_close(&plain, &inline.reconstruct(cfg.fixed).unwrap(), 0.02);
        assert_eq!(inline.report.preprocessing.generated_inline, 1);
        assert_eq!(inline.report.preprocessing.consumed, 2);
    }

    #[test]
    fn batch_consumes_pool_and_masks_differ_per_inference() {
        let seq = tiny_prefix();
        let xs: Vec<Tensor> =
            (0..3).map(|s| Tensor::rand_uniform(&[1, 1, 8, 8], -1.0, 1.0, s)).collect();
        let cfg = PiConfig::default();
        let mut session = PiSession::new(&specs_of(&seq), [1, 8, 8], cfg).unwrap();
        session.preprocess(3).unwrap();
        assert_eq!(session.pooled(), 3);
        let outs = session.infer_batch(&xs).unwrap();
        assert_eq!(outs.len(), 3);
        assert_eq!(session.pooled(), 0);
        for (x, out) in xs.iter().zip(&outs) {
            let plain = seq.forward_eval(x).unwrap();
            assert_close(&plain, &out.reconstruct(cfg.fixed).unwrap(), 0.02);
        }
        // The same input twice gets different masks (fresh correlations).
        let mut session2 = PiSession::new(&specs_of(&seq), [1, 8, 8], cfg).unwrap();
        session2.preprocess(2).unwrap();
        let a = session2.infer(&xs[0]).unwrap();
        let b = session2.infer(&xs[0]).unwrap();
        assert_ne!(a.client_share.as_raw(), b.client_share.as_raw());
    }

    #[test]
    fn batched_and_sequential_runs_share_the_seed_stream() {
        let seq = tiny_prefix();
        let xs: Vec<Tensor> =
            (0..2).map(|s| Tensor::rand_uniform(&[1, 1, 8, 8], -1.0, 1.0, 10 + s)).collect();
        let cfg = PiConfig::default();
        let mut batched = PiSession::new(&specs_of(&seq), [1, 8, 8], cfg).unwrap();
        let from_batch = batched.infer_batch(&xs).unwrap();
        let mut sequential = PiSession::new(&specs_of(&seq), [1, 8, 8], cfg).unwrap();
        let first = sequential.infer(&xs[0]).unwrap();
        let second = sequential.infer(&xs[1]).unwrap();
        assert_eq!(from_batch[0].client_share.as_raw(), first.client_share.as_raw());
        assert_eq!(from_batch[1].client_share.as_raw(), second.client_share.as_raw());
    }

    #[test]
    fn fused_batch_is_bit_identical_to_sequential_dealt_serving() {
        // The tentpole claim at the session layer: serving k inputs
        // through one fused serve_batch_prepared walk yields, for every
        // member, exactly the shares a solo dealt run over the same
        // pool item produces — for both backends.
        for backend in [PiBackend::Cheetah, PiBackend::Delphi] {
            let seq = tiny_prefix();
            let xs: Vec<Tensor> =
                (0..3).map(|s| Tensor::rand_uniform(&[1, 1, 8, 8], -1.0, 1.0, 50 + s)).collect();
            let cfg = PiConfig { backend, ..Default::default() };
            // Reference: sequential dealt serving (serve_one/request_one
            // over per-member pool items, in pool order).
            let server = PiSession::new(&specs_of(&seq), [1, 8, 8], cfg).unwrap().into_shared();
            server.preprocess(3).unwrap();
            let client = PiSession::new(&specs_of(&seq), [1, 8, 8], cfg).unwrap().into_shared();
            let mut want = Vec::new();
            for x in &xs {
                let (cch, sch, _) = c2pi_transport::channel_pair();
                let srv = server.clone();
                let t = std::thread::spawn(move || srv.serve_one(&sch).unwrap());
                let c = client.request_one(&cch, x).unwrap();
                let s = t.join().unwrap();
                want.push((c.share, s.share));
            }
            // Fused: same specs, fresh session (same master seed stream),
            // one batched run over all three inputs.
            let fused = PiSession::new(&specs_of(&seq), [1, 8, 8], cfg).unwrap().into_shared();
            fused.preprocess(3).unwrap();
            let outs = fused.infer_batch_dealt(&xs).unwrap();
            assert_eq!(outs.len(), 3);
            for (i, (out, (wc, ws))) in outs.iter().zip(&want).enumerate() {
                assert_eq!(
                    out.client_share.as_raw(),
                    wc.as_raw(),
                    "{backend:?} member {i} client share diverged"
                );
                assert_eq!(
                    out.server_share.as_raw(),
                    ws.as_raw(),
                    "{backend:?} member {i} server share diverged"
                );
            }
            // Each member consumed exactly one pool item.
            assert_eq!(fused.ledger().consumed, 3);
            assert_eq!(fused.ledger().generated_inline, 0);
            assert_eq!(fused.pooled(), 0);
            // Plaintext sanity on the reconstructed logits.
            for (x, out) in xs.iter().zip(&outs) {
                let plain = seq.forward_eval(x).unwrap();
                assert_close(&plain, &out.reconstruct(cfg.fixed).unwrap(), 0.02);
            }
        }
    }

    #[test]
    fn batch_of_one_delegates_to_the_solo_dealt_path() {
        let seq = tiny_prefix();
        let x = Tensor::rand_uniform(&[1, 1, 8, 8], -1.0, 1.0, 60);
        let cfg = PiConfig::default();
        let solo = PiSession::new(&specs_of(&seq), [1, 8, 8], cfg).unwrap().into_shared();
        solo.preprocess(1).unwrap();
        let client = PiSession::new(&specs_of(&seq), [1, 8, 8], cfg).unwrap().into_shared();
        let (cch, sch, _) = c2pi_transport::channel_pair();
        let srv = solo.clone();
        let t = std::thread::spawn(move || srv.serve_one(&sch).unwrap());
        let want = client.request_one(&cch, &x).unwrap();
        t.join().unwrap();
        let fused = PiSession::new(&specs_of(&seq), [1, 8, 8], cfg).unwrap().into_shared();
        fused.preprocess(1).unwrap();
        let outs = fused.infer_batch_dealt(std::slice::from_ref(&x)).unwrap();
        assert_eq!(outs.len(), 1);
        assert_eq!(outs[0].client_share.as_raw(), want.share.as_raw());
        assert!(fused.infer_batch_dealt(&[]).is_err());
    }

    #[test]
    fn delphi_runs_through_the_trait_too() {
        let seq = tiny_prefix();
        let x = Tensor::rand_uniform(&[1, 1, 8, 8], -1.0, 1.0, 5);
        let plain = seq.forward_eval(&x).unwrap();
        let cfg = PiConfig { backend: PiBackend::Delphi, ..Default::default() };
        let mut session = PiSession::new(&specs_of(&seq), [1, 8, 8], cfg).unwrap();
        session.preprocess(1).unwrap();
        let out = session.infer(&x).unwrap();
        assert_close(&plain, &out.reconstruct(cfg.fixed).unwrap(), 0.02);
        assert!(out.report.counts.and_gates > 0);
    }

    #[test]
    fn wrong_input_shape_is_rejected() {
        let seq = tiny_prefix();
        let cfg = PiConfig::default();
        let mut session = PiSession::new(&specs_of(&seq), [1, 8, 8], cfg).unwrap();
        let bad = Tensor::zeros(&[1, 1, 6, 6]);
        assert!(matches!(session.infer(&bad), Err(PiError::BadConfig(_))));
    }

    #[test]
    fn sim_and_tcp_transports_reproduce_the_mem_path_bit_for_bit() {
        use c2pi_transport::{NetModel, SimTransport, TcpLoopbackTransport};
        let seq = tiny_prefix();
        let x = Tensor::rand_uniform(&[1, 1, 8, 8], -1.0, 1.0, 21);
        let cfg = PiConfig::default();
        let mut mem = PiSession::new(&specs_of(&seq), [1, 8, 8], cfg).unwrap();
        let want = mem.infer(&x).unwrap();
        // A fast simulated network: the protocol transcript (and thus
        // the shares) must be identical, only the wall clock differs.
        let mut sim = PiSession::new(&specs_of(&seq), [1, 8, 8], cfg)
            .unwrap()
            .with_transport(SimTransport::new(NetModel::custom("fast", 1e12, 1e-5)));
        assert_eq!(sim.transport_label(), "sim-fast");
        let got = sim.infer(&x).unwrap();
        assert_eq!(got.client_share.as_raw(), want.client_share.as_raw());
        assert_eq!(got.server_share.as_raw(), want.server_share.as_raw());
        // Real TCP framing over loopback: same story.
        let mut tcp = PiSession::new(&specs_of(&seq), [1, 8, 8], cfg)
            .unwrap()
            .with_transport(TcpLoopbackTransport);
        let got = tcp.infer(&x).unwrap();
        assert_eq!(got.client_share.as_raw(), want.client_share.as_raw());
        assert_eq!(got.server_share.as_raw(), want.server_share.as_raw());
        assert_eq!(got.report.online.bytes_total(), want.report.online.bytes_total());
    }

    #[test]
    fn party_split_inference_matches_the_in_process_path() {
        use c2pi_transport::tcp_loopback_pair;
        let seq = tiny_prefix();
        let x = Tensor::rand_uniform(&[1, 1, 8, 8], -1.0, 1.0, 22);
        let cfg = PiConfig::default();
        // Reference: both parties in one session.
        let mut reference = PiSession::new(&specs_of(&seq), [1, 8, 8], cfg).unwrap();
        let want = reference.infer(&x).unwrap();
        // Two sessions with identical seeds, one per party, talking TCP.
        let (cch, sch, _) = tcp_loopback_pair().unwrap();
        let specs = specs_of(&seq);
        let specs_srv = specs.clone();
        let server = std::thread::spawn(move || {
            let mut s = PiSession::new(&specs_srv, [1, 8, 8], cfg).unwrap();
            s.infer_server(&sch).unwrap()
        });
        let mut c = PiSession::new(&specs, [1, 8, 8], cfg).unwrap();
        let client_out = c.infer_client(&cch, &x).unwrap();
        let server_out = server.join().unwrap();
        assert_eq!(client_out.share.as_raw(), want.client_share.as_raw());
        assert_eq!(server_out.share.as_raw(), want.server_share.as_raw());
        assert_eq!(client_out.dims, want.dims);
    }

    #[test]
    fn party_split_rejects_the_wrong_channel_end() {
        use c2pi_transport::tcp_loopback_pair;
        let seq = tiny_prefix();
        let cfg = PiConfig::default();
        let mut session = PiSession::new(&specs_of(&seq), [1, 8, 8], cfg).unwrap();
        let (cch, sch, _) = tcp_loopback_pair().unwrap();
        let x = Tensor::zeros(&[1, 1, 8, 8]);
        assert!(matches!(session.infer_client(&sch, &x), Err(PiError::BadConfig(_))));
        assert!(matches!(session.infer_server(&cch), Err(PiError::BadConfig(_))));
    }

    #[test]
    fn dealt_contract_matches_plaintext_and_counts_both_ledgers() {
        use c2pi_transport::tcp_loopback_pair;
        let seq = tiny_prefix();
        let x = Tensor::rand_uniform(&[1, 1, 8, 8], -1.0, 1.0, 31);
        let plain = seq.forward_eval(&x).unwrap();
        let cfg = PiConfig::default();
        let server = PiSession::new(&specs_of(&seq), [1, 8, 8], cfg).unwrap().into_shared();
        server.preprocess(1).unwrap();
        let client = PiSession::new(&specs_of(&seq), [1, 8, 8], cfg).unwrap().into_shared();
        let (cch, sch, _) = tcp_loopback_pair().unwrap();
        let srv = server.clone();
        let t = std::thread::spawn(move || srv.serve_one(&sch).unwrap());
        let client_out = client.request_one(&cch, &x).unwrap();
        let server_out = t.join().unwrap();
        let raw = c2pi_mpc::share::reconstruct(&client_out.share, &server_out.share);
        let got = cfg.fixed.decode_tensor(&raw, &client_out.dims).unwrap();
        assert_close(&plain, &got, 0.02);
        // Server consumed pooled material; the client dealt inline for
        // the seed it was handed.
        assert_eq!(server.ledger().consumed, 1);
        assert_eq!(server.ledger().generated_inline, 0);
        assert_eq!(client.ledger().generated_inline, 1);
    }

    #[test]
    fn shared_handle_serves_concurrent_inferences_from_one_pool() {
        let seq = tiny_prefix();
        let cfg = PiConfig::default();
        let shared = PiSession::new(&specs_of(&seq), [1, 8, 8], cfg).unwrap().into_shared();
        shared.preprocess(4).unwrap();
        let x = Tensor::rand_uniform(&[1, 1, 8, 8], -1.0, 1.0, 40);
        let plain = tiny_prefix().forward_eval(&x).unwrap();
        let outs: Vec<PiOutcome> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let s = shared.clone();
                    let xx = x.clone();
                    scope.spawn(move || s.infer(&xx).unwrap())
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for out in &outs {
            assert_close(&plain, &out.reconstruct(cfg.fixed).unwrap(), 0.02);
        }
        let ledger = shared.ledger();
        assert_eq!(ledger.consumed, 4);
        assert_eq!(ledger.generated_inline, 0);
        assert_eq!(ledger.available, 0);
    }
}
