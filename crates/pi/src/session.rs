//! Long-lived private-inference sessions with an explicit offline/online
//! phase split.
//!
//! A [`PiSession`] is the per-deployment object a serving system keeps
//! alive: it compiles the crypto prefix once (shape inference, ring
//! encoding of the server's weights), then separates the two protocol
//! phases the paper's systems are built around:
//!
//! * **offline** — [`PiSession::preprocess`] runs the trusted dealer to
//!   generate correlated randomness (masked-linear correlations, Beaver
//!   and bit triples, base OTs for garbling) for `n` *future* inferences,
//!   input-independently;
//! * **online** — [`PiSession::infer`] / [`PiSession::infer_batch`]
//!   consume one pooled material set per input and only pay the cheap
//!   interactive protocol.
//!
//! Every [`crate::report::PiReport`] carries a
//! [`crate::report::PreprocessLedger`] stating whether its run consumed
//! pooled material or had to generate some inline, so benchmarks can
//! report true online latency.
//!
//! Per-inference randomness is forked from the session master seed with
//! a domain-separated PRG stream ([`c2pi_mpc::prg::SeedSequence`]), so
//! batched and sequential execution consume identical seed streams and
//! every inference gets fresh, reproducible masks.
//!
//! The parties talk over whatever [`c2pi_transport::Channel`] the
//! session's [`c2pi_transport::Transport`] produces
//! ([`PiSession::with_transport`]): the in-memory default, an in-line
//! simulated LAN/WAN, or TCP framing. For genuinely separate processes,
//! [`PiSession::infer_client`] / [`PiSession::infer_server`] run a
//! single party over an externally connected channel.

use crate::backend::{NlMaterial, PiBackendImpl};
use crate::engine::{PiConfig, PiOutcome};
use crate::plan::{compile, Plan, Step, StepData};
use crate::report::{OpCounts, PiReport, PreprocessLedger};
use crate::{PiError, Result};
use c2pi_mpc::beaver::truncate_share;
use c2pi_mpc::dealer::{
    AffineCorrClient, AffineCorrServer, Dealer, LinearCorrClient, LinearCorrServer,
};
use c2pi_mpc::prg::{Prg, SeedSequence};
use c2pi_mpc::ring::{im2col_ring, RingMatrix};
use c2pi_mpc::share::{share_secret, ShareVec};
use c2pi_nn::LayerSpec;
use c2pi_tensor::Tensor;
use c2pi_transport::{Channel, MemTransport, Side, Transport};
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Instant;

/// Client-side per-inference material for one step.
enum ClientMat {
    Lin(LinearCorrClient),
    Nl(NlMaterial),
    Affine(AffineCorrClient),
    None,
}

/// Server-side per-inference material for one step (weights live in the
/// compiled plan, not here).
enum ServerMat {
    Lin(LinearCorrServer),
    Nl(NlMaterial),
    Affine(AffineCorrServer),
    None,
}

/// One inference's worth of correlated randomness plus the seed that
/// derives the parties' local randomness.
struct InferenceMaterial {
    seed: u64,
    cmats: Vec<ClientMat>,
    smats: Vec<ServerMat>,
    counts: OpCounts,
}

/// A long-lived private-inference session over one compiled crypto
/// prefix. See the [module docs](crate::session) for the phase model.
pub struct PiSession {
    plan: Plan,
    cfg: PiConfig,
    backend: Arc<dyn PiBackendImpl>,
    transport: Arc<dyn Transport>,
    seeds: SeedSequence,
    pool: VecDeque<InferenceMaterial>,
    ledger: PreprocessLedger,
}

impl std::fmt::Debug for PiSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PiSession")
            .field("backend", &self.backend.name())
            .field("transport", &self.transport.label())
            .field("steps", &self.plan.steps.len())
            .field("pooled", &self.pool.len())
            .field("ledger", &self.ledger)
            .finish()
    }
}

/// One party's result of a transport-split inference
/// ([`PiSession::infer_client`] / [`PiSession::infer_server`]): this
/// side's additive share of the boundary activation plus the run's cost
/// report (traffic as seen by this side's channel counter).
#[derive(Debug, Clone)]
pub struct PartyOutcome {
    /// This party's additive share of the boundary activation.
    pub share: ShareVec,
    /// Public shape of the boundary activation.
    pub dims: Vec<usize>,
    /// Cost profile of the run.
    pub report: PiReport,
}

impl PiSession {
    /// Compiles a session for `specs` on `[c, h, w]` inputs, resolving
    /// the backend from `cfg.backend`.
    ///
    /// # Errors
    ///
    /// Returns [`PiError::UnsupportedLayer`] / [`PiError::BadConfig`]
    /// for prefixes the engine cannot execute.
    pub fn new(specs: &[LayerSpec], input_chw: [usize; 3], cfg: PiConfig) -> Result<Self> {
        let backend = cfg.backend.engine();
        Self::with_backend(specs, input_chw, cfg, backend)
    }

    /// Compiles a session with an explicit backend implementation
    /// (custom backends; `cfg.backend` is ignored for dispatch but still
    /// seeds defaults).
    ///
    /// # Errors
    ///
    /// Same as [`PiSession::new`].
    pub fn with_backend(
        specs: &[LayerSpec],
        input_chw: [usize; 3],
        cfg: PiConfig,
        backend: Arc<dyn PiBackendImpl>,
    ) -> Result<Self> {
        let [c, h, w] = input_chw;
        let plan = compile(specs, (c, h, w), cfg.fixed)?;
        Ok(PiSession {
            plan,
            cfg,
            backend,
            transport: Arc::new(MemTransport),
            seeds: SeedSequence::new(cfg.dealer_seed, b"c2pi/session/dealer"),
            pool: VecDeque::new(),
            ledger: PreprocessLedger::default(),
        })
    }

    /// Replaces the transport the in-process party threads talk over
    /// (the default is the in-memory pair). Accepts any
    /// [`Transport`] — e.g. `SimTransport::new(NetModel::wan())` to put
    /// WAN latency on the online wall clock, or an
    /// `Arc<dyn Transport>`.
    pub fn with_transport<T: Transport + 'static>(mut self, transport: T) -> Self {
        self.transport = Arc::new(transport);
        self
    }

    /// Label of the active transport (`mem`, `sim-wan`, …).
    pub fn transport_label(&self) -> String {
        self.transport.label()
    }

    /// The backend's engine name.
    pub fn backend_name(&self) -> &'static str {
        self.backend.name()
    }

    /// Engine configuration the session was built with.
    pub fn config(&self) -> &PiConfig {
        &self.cfg
    }

    /// Number of crypto-prefix steps.
    pub fn step_count(&self) -> usize {
        self.plan.steps.len()
    }

    /// Public shape of the boundary activation.
    pub fn out_dims(&self) -> &[usize] {
        &self.plan.out_dims
    }

    /// Material sets currently pooled for future inferences.
    pub fn pooled(&self) -> usize {
        self.pool.len()
    }

    /// Current preprocessing ledger.
    pub fn ledger(&self) -> PreprocessLedger {
        let mut l = self.ledger;
        l.available = self.pool.len() as u64;
        l
    }

    /// Offline phase: generates correlated randomness for `n` future
    /// inferences and pools it. Input-independent; run it ahead of
    /// traffic so [`PiSession::infer`] stays on the cheap path.
    ///
    /// # Errors
    ///
    /// Propagates dealer errors (caller shape bugs).
    pub fn preprocess(&mut self, n: usize) -> Result<()> {
        let start = Instant::now();
        for _ in 0..n {
            let material = self.generate_material()?;
            self.pool.push_back(material);
            self.ledger.generated_offline += 1;
        }
        self.ledger.generation_seconds += start.elapsed().as_secs_f64();
        Ok(())
    }

    fn generate_material(&mut self) -> Result<InferenceMaterial> {
        let seed = self.seeds.next();
        let mut dealer = Dealer::new(seed);
        let mut counts = self.plan.base_counts.clone();
        let mut cmats = Vec::with_capacity(self.plan.steps.len());
        let mut smats = Vec::with_capacity(self.plan.steps.len());
        for (step, data) in self.plan.steps.iter().zip(self.plan.data.iter()) {
            match (step, data) {
                (Step::Conv { .. } | Step::Fc { .. }, StepData::Lin { w, cols, .. }) => {
                    let (corr_c, corr_s) = self.backend.prepare_linear(&mut dealer, w, *cols)?;
                    cmats.push(ClientMat::Lin(corr_c));
                    smats.push(ServerMat::Lin(corr_s));
                }
                (Step::Relu { n }, StepData::None) => {
                    let (cm, sm) =
                        self.backend.prepare_relu(&mut dealer, *n, &self.cfg, &mut counts);
                    cmats.push(ClientMat::Nl(cm));
                    smats.push(ServerMat::Nl(sm));
                }
                (Step::MaxPool { c, h, w }, StepData::None) => {
                    let windows = c * (h / 2) * (w / 2);
                    let (cm, sm) =
                        self.backend.prepare_maxpool(&mut dealer, windows, &self.cfg, &mut counts);
                    cmats.push(ClientMat::Nl(cm));
                    smats.push(ServerMat::Nl(sm));
                }
                (Step::Affine, StepData::Affine { scale, .. }) => {
                    let (corr_c, corr_s) = dealer.affine_corr(scale);
                    cmats.push(ClientMat::Affine(corr_c));
                    smats.push(ServerMat::Affine(corr_s));
                }
                (Step::AvgPool { .. } | Step::Flatten, StepData::None) => {
                    cmats.push(ClientMat::None);
                    smats.push(ServerMat::None);
                }
                _ => return Err(PiError::BadConfig("plan/data mismatch".into())),
            }
        }
        Ok(InferenceMaterial { seed, cmats, smats, counts })
    }

    fn take_material(&mut self) -> Result<InferenceMaterial> {
        if let Some(m) = self.pool.pop_front() {
            return Ok(m);
        }
        // Pool dry: generate on the critical path and say so in the
        // ledger.
        let start = Instant::now();
        let m = self.generate_material()?;
        self.ledger.generated_inline += 1;
        self.ledger.generation_seconds += start.elapsed().as_secs_f64();
        Ok(m)
    }

    /// Online phase: runs one private inference on a `[1, c, h, w]`
    /// input, consuming one pooled material set (generating inline if
    /// the pool is dry).
    ///
    /// # Errors
    ///
    /// Returns engine, shape or protocol errors.
    pub fn infer(&mut self, x: &Tensor) -> Result<PiOutcome> {
        let (_, c, h, w) = x.shape().as_nchw()?;
        if (c, h, w) != self.plan.in_chw {
            return Err(PiError::BadConfig(format!(
                "session compiled for {:?} inputs, got [{c}, {h}, {w}]",
                self.plan.in_chw
            )));
        }
        let material = self.take_material()?;
        self.ledger.consumed += 1;
        let InferenceMaterial { seed, cmats, smats, counts } = material;
        let (cep, sep, counter) = self.transport.pair()?;
        let plan = &self.plan;
        let cfg = self.cfg;
        let backend = &*self.backend;
        let start = Instant::now();
        let (client_res, server_res) = std::thread::scope(|scope| {
            let server =
                scope.spawn(move || server_thread(&*sep, plan, smats, &cfg, backend, seed));
            let client = client_thread(&*cep, plan, cmats, x, &cfg, backend, seed);
            let server = server.join().map_err(|_| PiError::PartyPanic("server"));
            (client, server)
        });
        let online_seconds = start.elapsed().as_secs_f64();
        let client_share = client_res?;
        let server_share = server_res??;
        let online = counter.snapshot();
        let model = self.backend.cost_model();
        let offline = model.offline_traffic(&counts);
        let offline_seconds = model.offline_seconds(&counts);
        Ok(PiOutcome {
            client_share,
            server_share,
            dims: self.plan.out_dims.clone(),
            report: PiReport {
                backend: self.backend.name(),
                online,
                offline,
                online_seconds,
                offline_seconds,
                counts,
                preprocessing: self.ledger(),
            },
        })
    }

    /// Online phase over a batch: one outcome per input, consuming one
    /// pooled material set each. Preprocess at least `xs.len()` sets
    /// first to keep the whole batch on the online path.
    ///
    /// # Errors
    ///
    /// Fails on the first erroring inference.
    pub fn infer_batch(&mut self, xs: &[Tensor]) -> Result<Vec<PiOutcome>> {
        xs.iter().map(|x| self.infer(x)).collect()
    }

    /// Runs only the **client** party of one inference over an external
    /// channel — the entry point for genuinely separate processes (see
    /// the `two_party` example binaries, which connect
    /// [`c2pi_transport::TcpChannel`]s).
    ///
    /// Both processes must build the session with identical specs and
    /// configuration: the deterministic dealer stands in for the
    /// trusted third party, so equal master seeds make both sides draw
    /// matching correlated-randomness halves (each keeps its own half
    /// and discards the other).
    ///
    /// # Errors
    ///
    /// Returns [`PiError::BadConfig`] when `ch` is not the client end,
    /// plus the engine, shape and protocol errors of
    /// [`PiSession::infer`].
    pub fn infer_client(&mut self, ch: &dyn Channel, x: &Tensor) -> Result<PartyOutcome> {
        if ch.side() != Side::Client {
            return Err(PiError::BadConfig("infer_client needs the client channel end".into()));
        }
        let (_, c, h, w) = x.shape().as_nchw()?;
        if (c, h, w) != self.plan.in_chw {
            return Err(PiError::BadConfig(format!(
                "session compiled for {:?} inputs, got [{c}, {h}, {w}]",
                self.plan.in_chw
            )));
        }
        let InferenceMaterial { seed, cmats, smats: _, counts } = self.take_material()?;
        self.ledger.consumed += 1;
        let before = ch.counter().snapshot();
        let start = Instant::now();
        let share = client_thread(ch, &self.plan, cmats, x, &self.cfg, &*self.backend, seed)?;
        Ok(self.party_outcome(share, counts, ch, before, start.elapsed().as_secs_f64()))
    }

    /// Runs only the **server** party of one inference over an external
    /// channel. See [`PiSession::infer_client`] for the two-process
    /// contract.
    ///
    /// # Errors
    ///
    /// Returns [`PiError::BadConfig`] when `ch` is not the server end,
    /// plus engine and protocol errors.
    pub fn infer_server(&mut self, ch: &dyn Channel) -> Result<PartyOutcome> {
        if ch.side() != Side::Server {
            return Err(PiError::BadConfig("infer_server needs the server channel end".into()));
        }
        let InferenceMaterial { seed, cmats: _, smats, counts } = self.take_material()?;
        self.ledger.consumed += 1;
        let before = ch.counter().snapshot();
        let start = Instant::now();
        let share = server_thread(ch, &self.plan, smats, &self.cfg, &*self.backend, seed)?;
        Ok(self.party_outcome(share, counts, ch, before, start.elapsed().as_secs_f64()))
    }

    fn party_outcome(
        &self,
        share: ShareVec,
        counts: OpCounts,
        ch: &dyn Channel,
        before: c2pi_transport::TrafficSnapshot,
        online_seconds: f64,
    ) -> PartyOutcome {
        let model = self.backend.cost_model();
        let offline = model.offline_traffic(&counts);
        let offline_seconds = model.offline_seconds(&counts);
        PartyOutcome {
            share,
            dims: self.plan.out_dims.clone(),
            report: PiReport {
                backend: self.backend.name(),
                online: ch.counter().snapshot().since(&before),
                offline,
                online_seconds,
                offline_seconds,
                counts,
                preprocessing: self.ledger(),
            },
        }
    }
}

/// Gathers 2×2 window elements of a `[c, h, w]` share into four parallel
/// index lists (public permutation, applied by both parties).
fn pool_windows(c: usize, h: usize, w: usize) -> Vec<[usize; 4]> {
    let mut idx = Vec::with_capacity(c * (h / 2) * (w / 2));
    for ch in 0..c {
        let plane = ch * h * w;
        for oy in 0..h / 2 {
            for ox in 0..w / 2 {
                let base = plane + 2 * oy * w + 2 * ox;
                idx.push([base, base + 1, base + w, base + w + 1]);
            }
        }
    }
    idx
}

fn gather(share: &ShareVec, idx: &[[usize; 4]]) -> ShareVec {
    let mut out = Vec::with_capacity(idx.len() * 4);
    for quad in idx {
        for &i in quad {
            out.push(share.as_raw()[i]);
        }
    }
    ShareVec::from_raw(out)
}

fn avg_pool_share(
    share: &ShareVec,
    (c, h, w): (usize, usize, usize),
    (window, stride): (usize, usize),
    is_client: bool,
    fp: c2pi_mpc::FixedPoint,
) -> ShareVec {
    let oh = (h - window) / stride + 1;
    let ow = (w - window) / stride + 1;
    let coeff = fp.encode(1.0 / (window * window) as f32);
    let mut out = Vec::with_capacity(c * oh * ow);
    for ch in 0..c {
        let plane = ch * h * w;
        for oy in 0..oh {
            for ox in 0..ow {
                let mut acc = 0u64;
                for ky in 0..window {
                    for kx in 0..window {
                        acc = acc.wrapping_add(
                            share.as_raw()[plane + (oy * stride + ky) * w + ox * stride + kx],
                        );
                    }
                }
                out.push(acc.wrapping_mul(coeff));
            }
        }
    }
    truncate_share(&ShareVec::from_raw(out), is_client, fp)
}

fn client_thread(
    ep: &dyn Channel,
    plan: &Plan,
    mats: Vec<ClientMat>,
    x: &Tensor,
    cfg: &PiConfig,
    backend: &dyn PiBackendImpl,
    seed: u64,
) -> Result<ShareVec> {
    let fp = cfg.fixed;
    // Share the input: keep x0, send x1.
    let secret = fp.encode_tensor(x);
    let mut prg = Prg::from_u64(seed ^ 0xC11E_57A9);
    let (x0, x1) = share_secret(&secret, &mut prg);
    ep.send_u64s(x1.as_raw())?;
    let mut cur = x0;
    for (step, mat) in plan.steps.iter().zip(mats) {
        match (step, mat) {
            (Step::Conv { c, h, w, geom }, ClientMat::Lin(corr)) => {
                let cols = im2col_ring(cur.as_raw(), *c, *h, *w, *geom)?;
                let y = backend.linear_online_client(ep, &cols, &corr)?;
                cur = truncate_share(&ShareVec::from_raw(y.into_vec()), true, fp);
            }
            (Step::Fc { k }, ClientMat::Lin(corr)) => {
                let xm = RingMatrix::from_vec(cur.as_raw().to_vec(), *k, 1)?;
                let y = backend.linear_online_client(ep, &xm, &corr)?;
                cur = truncate_share(&ShareVec::from_raw(y.into_vec()), true, fp);
            }
            (Step::Relu { n: _ }, ClientMat::Nl(material)) => {
                cur = backend.relu_online(ep, Side::Client, &cur, material, cfg, &mut prg)?;
            }
            (Step::MaxPool { c, h, w }, ClientMat::Nl(material)) => {
                let idx = pool_windows(*c, *h, *w);
                let quads = gather(&cur, &idx);
                cur = backend.maxpool_online(ep, Side::Client, &quads, material, cfg, &mut prg)?;
            }
            (Step::AvgPool { c, h, w, window, stride }, ClientMat::None) => {
                cur = avg_pool_share(&cur, (*c, *h, *w), (*window, *stride), true, fp);
            }
            (Step::Flatten, ClientMat::None) => {}
            (Step::Affine, ClientMat::Affine(corr)) => {
                let y = c2pi_mpc::beaver::affine_client(ep, &cur, &corr)?;
                cur = truncate_share(&y, true, fp);
            }
            _ => return Err(PiError::BadConfig("plan/material mismatch (client)".into())),
        }
    }
    Ok(cur)
}

fn server_thread(
    ep: &dyn Channel,
    plan: &Plan,
    mats: Vec<ServerMat>,
    cfg: &PiConfig,
    backend: &dyn PiBackendImpl,
    seed: u64,
) -> Result<ShareVec> {
    let fp = cfg.fixed;
    let mut prg = Prg::from_u64(seed ^ 0x5E2F_E27A);
    let mut cur = ShareVec::from_raw(ep.recv_u64s()?);
    for ((step, data), mat) in plan.steps.iter().zip(plan.data.iter()).zip(mats) {
        match (step, data, mat) {
            (
                Step::Conv { c, h, w, geom },
                StepData::Lin { w: w_ring, bias2f, .. },
                ServerMat::Lin(corr),
            ) => {
                let cols = im2col_ring(cur.as_raw(), *c, *h, *w, *geom)?;
                let mut y = backend.linear_online_server(ep, w_ring, &cols, &corr)?;
                let oh_ow = y.cols();
                for (row, &b) in y.as_mut_slice().chunks_exact_mut(oh_ow).zip(bias2f.iter()) {
                    for v in row {
                        *v = v.wrapping_add(b);
                    }
                }
                cur = truncate_share(&ShareVec::from_raw(y.into_vec()), false, fp);
            }
            (Step::Fc { k }, StepData::Lin { w: w_ring, bias2f, .. }, ServerMat::Lin(corr)) => {
                let xm = RingMatrix::from_vec(cur.as_raw().to_vec(), *k, 1)?;
                let mut y = backend.linear_online_server(ep, w_ring, &xm, &corr)?;
                for (v, &b) in y.as_mut_slice().iter_mut().zip(bias2f.iter()) {
                    *v = v.wrapping_add(b);
                }
                cur = truncate_share(&ShareVec::from_raw(y.into_vec()), false, fp);
            }
            (Step::Relu { n: _ }, StepData::None, ServerMat::Nl(material)) => {
                cur = backend.relu_online(ep, Side::Server, &cur, material, cfg, &mut prg)?;
            }
            (Step::MaxPool { c, h, w }, StepData::None, ServerMat::Nl(material)) => {
                let idx = pool_windows(*c, *h, *w);
                let quads = gather(&cur, &idx);
                cur = backend.maxpool_online(ep, Side::Server, &quads, material, cfg, &mut prg)?;
            }
            (Step::AvgPool { c, h, w, window, stride }, StepData::None, ServerMat::None) => {
                cur = avg_pool_share(&cur, (*c, *h, *w), (*window, *stride), false, fp);
            }
            (Step::Flatten, StepData::None, ServerMat::None) => {}
            (Step::Affine, StepData::Affine { scale, shift2f }, ServerMat::Affine(corr)) => {
                let y = c2pi_mpc::beaver::affine_server(ep, scale, &cur, &corr)?;
                let shifted: Vec<u64> = y
                    .as_raw()
                    .iter()
                    .zip(shift2f.iter())
                    .map(|(&v, &s)| v.wrapping_add(s))
                    .collect();
                cur = truncate_share(&ShareVec::from_raw(shifted), false, fp);
            }
            _ => return Err(PiError::BadConfig("plan/material mismatch (server)".into())),
        }
    }
    Ok(cur)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{specs_of, PiBackend};
    use c2pi_nn::layers::{Conv2d, MaxPool2d, Relu};
    use c2pi_nn::Sequential;

    fn tiny_prefix() -> Sequential {
        let mut s = Sequential::new();
        s.push(Conv2d::new(1, 3, 3, 1, 1, 1, 1));
        s.push(Relu::new());
        s.push(MaxPool2d::new(2, 2));
        s
    }

    fn assert_close(a: &Tensor, b: &Tensor, tol: f32) {
        assert_eq!(a.dims(), b.dims());
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((x - y).abs() < tol, "{x} vs {y}");
        }
    }

    #[test]
    fn preprocessed_and_inline_inferences_agree_with_plaintext() {
        let seq = tiny_prefix();
        let x = Tensor::rand_uniform(&[1, 1, 8, 8], -1.0, 1.0, 3);
        let plain = seq.forward_eval(&x).unwrap();
        let cfg = PiConfig::default();
        let mut session = PiSession::new(&specs_of(&seq), [1, 8, 8], cfg).unwrap();
        session.preprocess(1).unwrap();
        let pooled = session.infer(&x).unwrap();
        assert_close(&plain, &pooled.reconstruct(cfg.fixed).unwrap(), 0.02);
        assert_eq!(pooled.report.preprocessing.generated_offline, 1);
        assert_eq!(pooled.report.preprocessing.generated_inline, 0);
        // Pool now dry: the next inference generates inline and says so.
        let inline = session.infer(&x).unwrap();
        assert_close(&plain, &inline.reconstruct(cfg.fixed).unwrap(), 0.02);
        assert_eq!(inline.report.preprocessing.generated_inline, 1);
        assert_eq!(inline.report.preprocessing.consumed, 2);
    }

    #[test]
    fn batch_consumes_pool_and_masks_differ_per_inference() {
        let seq = tiny_prefix();
        let xs: Vec<Tensor> =
            (0..3).map(|s| Tensor::rand_uniform(&[1, 1, 8, 8], -1.0, 1.0, s)).collect();
        let cfg = PiConfig::default();
        let mut session = PiSession::new(&specs_of(&seq), [1, 8, 8], cfg).unwrap();
        session.preprocess(3).unwrap();
        assert_eq!(session.pooled(), 3);
        let outs = session.infer_batch(&xs).unwrap();
        assert_eq!(outs.len(), 3);
        assert_eq!(session.pooled(), 0);
        for (x, out) in xs.iter().zip(&outs) {
            let plain = seq.forward_eval(x).unwrap();
            assert_close(&plain, &out.reconstruct(cfg.fixed).unwrap(), 0.02);
        }
        // The same input twice gets different masks (fresh correlations).
        let mut session2 = PiSession::new(&specs_of(&seq), [1, 8, 8], cfg).unwrap();
        session2.preprocess(2).unwrap();
        let a = session2.infer(&xs[0]).unwrap();
        let b = session2.infer(&xs[0]).unwrap();
        assert_ne!(a.client_share.as_raw(), b.client_share.as_raw());
    }

    #[test]
    fn batched_and_sequential_runs_share_the_seed_stream() {
        let seq = tiny_prefix();
        let xs: Vec<Tensor> =
            (0..2).map(|s| Tensor::rand_uniform(&[1, 1, 8, 8], -1.0, 1.0, 10 + s)).collect();
        let cfg = PiConfig::default();
        let mut batched = PiSession::new(&specs_of(&seq), [1, 8, 8], cfg).unwrap();
        let from_batch = batched.infer_batch(&xs).unwrap();
        let mut sequential = PiSession::new(&specs_of(&seq), [1, 8, 8], cfg).unwrap();
        let first = sequential.infer(&xs[0]).unwrap();
        let second = sequential.infer(&xs[1]).unwrap();
        assert_eq!(from_batch[0].client_share.as_raw(), first.client_share.as_raw());
        assert_eq!(from_batch[1].client_share.as_raw(), second.client_share.as_raw());
    }

    #[test]
    fn delphi_runs_through_the_trait_too() {
        let seq = tiny_prefix();
        let x = Tensor::rand_uniform(&[1, 1, 8, 8], -1.0, 1.0, 5);
        let plain = seq.forward_eval(&x).unwrap();
        let cfg = PiConfig { backend: PiBackend::Delphi, ..Default::default() };
        let mut session = PiSession::new(&specs_of(&seq), [1, 8, 8], cfg).unwrap();
        session.preprocess(1).unwrap();
        let out = session.infer(&x).unwrap();
        assert_close(&plain, &out.reconstruct(cfg.fixed).unwrap(), 0.02);
        assert!(out.report.counts.and_gates > 0);
    }

    #[test]
    fn wrong_input_shape_is_rejected() {
        let seq = tiny_prefix();
        let cfg = PiConfig::default();
        let mut session = PiSession::new(&specs_of(&seq), [1, 8, 8], cfg).unwrap();
        let bad = Tensor::zeros(&[1, 1, 6, 6]);
        assert!(matches!(session.infer(&bad), Err(PiError::BadConfig(_))));
    }

    #[test]
    fn sim_and_tcp_transports_reproduce_the_mem_path_bit_for_bit() {
        use c2pi_transport::{NetModel, SimTransport, TcpLoopbackTransport};
        let seq = tiny_prefix();
        let x = Tensor::rand_uniform(&[1, 1, 8, 8], -1.0, 1.0, 21);
        let cfg = PiConfig::default();
        let mut mem = PiSession::new(&specs_of(&seq), [1, 8, 8], cfg).unwrap();
        let want = mem.infer(&x).unwrap();
        // A fast simulated network: the protocol transcript (and thus
        // the shares) must be identical, only the wall clock differs.
        let mut sim = PiSession::new(&specs_of(&seq), [1, 8, 8], cfg)
            .unwrap()
            .with_transport(SimTransport::new(NetModel::custom("fast", 1e12, 1e-5)));
        assert_eq!(sim.transport_label(), "sim-fast");
        let got = sim.infer(&x).unwrap();
        assert_eq!(got.client_share.as_raw(), want.client_share.as_raw());
        assert_eq!(got.server_share.as_raw(), want.server_share.as_raw());
        // Real TCP framing over loopback: same story.
        let mut tcp = PiSession::new(&specs_of(&seq), [1, 8, 8], cfg)
            .unwrap()
            .with_transport(TcpLoopbackTransport);
        let got = tcp.infer(&x).unwrap();
        assert_eq!(got.client_share.as_raw(), want.client_share.as_raw());
        assert_eq!(got.server_share.as_raw(), want.server_share.as_raw());
        assert_eq!(got.report.online.bytes_total(), want.report.online.bytes_total());
    }

    #[test]
    fn party_split_inference_matches_the_in_process_path() {
        use c2pi_transport::tcp_loopback_pair;
        let seq = tiny_prefix();
        let x = Tensor::rand_uniform(&[1, 1, 8, 8], -1.0, 1.0, 22);
        let cfg = PiConfig::default();
        // Reference: both parties in one session.
        let mut reference = PiSession::new(&specs_of(&seq), [1, 8, 8], cfg).unwrap();
        let want = reference.infer(&x).unwrap();
        // Two sessions with identical seeds, one per party, talking TCP.
        let (cch, sch, _) = tcp_loopback_pair().unwrap();
        let specs = specs_of(&seq);
        let specs_srv = specs.clone();
        let server = std::thread::spawn(move || {
            let mut s = PiSession::new(&specs_srv, [1, 8, 8], cfg).unwrap();
            s.infer_server(&sch).unwrap()
        });
        let mut c = PiSession::new(&specs, [1, 8, 8], cfg).unwrap();
        let client_out = c.infer_client(&cch, &x).unwrap();
        let server_out = server.join().unwrap();
        assert_eq!(client_out.share.as_raw(), want.client_share.as_raw());
        assert_eq!(server_out.share.as_raw(), want.server_share.as_raw());
        assert_eq!(client_out.dims, want.dims);
    }

    #[test]
    fn party_split_rejects_the_wrong_channel_end() {
        use c2pi_transport::tcp_loopback_pair;
        let seq = tiny_prefix();
        let cfg = PiConfig::default();
        let mut session = PiSession::new(&specs_of(&seq), [1, 8, 8], cfg).unwrap();
        let (cch, sch, _) = tcp_loopback_pair().unwrap();
        let x = Tensor::zeros(&[1, 1, 8, 8]);
        assert!(matches!(session.infer_client(&sch, &x), Err(PiError::BadConfig(_))));
        assert!(matches!(session.infer_server(&cch), Err(PiError::BadConfig(_))));
    }
}
