//! Analytic cost model for the HE offline phases (DESIGN.md §3).
//!
//! What the engines execute online is measured exactly by the channel;
//! what real Delphi/Cheetah do *offline* with homomorphic encryption —
//! shipping `Enc(r)` / `Enc(W·r − s)` ciphertexts and evaluating the
//! linear layers homomorphically — is charged here from first-order
//! parameters (ciphertext size, slot count, per-MAC evaluation time).
//! The constants are chosen so the *relative* magnitudes match the
//! published systems: Delphi's offline dominates its end-to-end cost,
//! Cheetah's lattice pipeline is roughly an order of magnitude leaner.

use crate::report::OpCounts;
use c2pi_transport::{Side, TrafficSnapshot};
use serde::{Deserialize, Serialize};

/// First-order offline cost parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OfflineCostModel {
    /// Serialized ciphertext size in bytes.
    pub ct_bytes: u64,
    /// Plaintext slots per ciphertext.
    pub slots: usize,
    /// Homomorphic evaluation time per multiply-accumulate, seconds.
    pub sec_per_mac: f64,
    /// Setup bytes per correlated-randomness bit (silent-OT seeds /
    /// triple material shipped offline).
    pub bytes_per_bit_triple: f64,
    /// Garbling + transfer time per AND gate shipped offline, seconds
    /// (zero when the backend has no GC component).
    pub sec_per_and_gate: f64,
    /// Bytes per AND gate shipped offline: the two-row half-gates table
    /// plus the amortised decode/fixed-label material of the
    /// offline-garbled circuits (zero when the backend has no GC
    /// component).
    pub bytes_per_and_gate: f64,
    /// Bytes per XOR gate shipped offline — identically zero under the
    /// free-XOR scheme (no table, no hash); kept as an explicit model
    /// term so the zero cost is visible and pinned rather than implied.
    pub bytes_per_xor_gate: f64,
    /// Bytes per base OT of the per-session setup the IKNP extension
    /// amortises (public keys / seed commitments).
    pub bytes_per_base_ot: f64,
    /// Bytes per extended OT: the `u`-matrix column plus the masked
    /// message pair of one IKNP label transfer (zero for silent-OT
    /// backends, whose extension ships only seeds).
    pub bytes_per_ext_ot: f64,
}

impl OfflineCostModel {
    /// Delphi-like parameters: SEAL BFV at n=8192 — 128 KiB ciphertexts,
    /// 4096 slots, slow rotation-heavy convolutions, garbled circuits
    /// garbled *and shipped* offline (tables down, extension-transferred
    /// evaluator labels via IKNP).
    pub fn delphi() -> Self {
        OfflineCostModel {
            ct_bytes: 131_072,
            slots: 4096,
            sec_per_mac: 2.0e-7,
            bytes_per_bit_triple: 0.0,
            sec_per_and_gate: 2.0e-7,
            // 32 B of half-gates table rows plus ~6 B of amortised
            // decode bits and fixed-input labels per AND gate.
            bytes_per_and_gate: 38.0,
            bytes_per_xor_gate: 0.0,
            bytes_per_base_ot: 64.0,
            // 16 B u-matrix column + 32 B masked message pair.
            bytes_per_ext_ot: 48.0,
        }
    }

    /// Cheetah-like parameters: leaner lattice encoding without
    /// rotations — smaller ciphertexts and roughly 10× faster
    /// homomorphic linear algebra; silent-OT setup for the non-linear
    /// correlations (base OTs real, extension traffic seed-sized).
    pub fn cheetah() -> Self {
        OfflineCostModel {
            ct_bytes: 32_768,
            slots: 4096,
            sec_per_mac: 2.0e-8,
            bytes_per_bit_triple: 0.125,
            sec_per_and_gate: 0.0,
            bytes_per_and_gate: 0.0,
            bytes_per_xor_gate: 0.0,
            bytes_per_base_ot: 64.0,
            bytes_per_ext_ot: 0.0,
        }
    }

    /// Modelled offline traffic for the accumulated operation counts
    /// under **seed-compressed dealing**: ciphertexts still flow both
    /// ways for each linear layer (`Enc(r)` up, `Enc(W·r − s)` down) and
    /// the base-OT setup is still shipped, but the triples, garbled
    /// tables and extension-transferred labels now travel as a compact
    /// `DealtSeed` (`counts.seed_bytes`, dealer→parties, charged down)
    /// that each party expands locally. What the expanded correlations
    /// would have cost on the wire is in
    /// [`OfflineCostModel::expanded_traffic`].
    pub fn offline_traffic(&self, counts: &OpCounts) -> TrafficSnapshot {
        let cts_up: u64 =
            counts.linear_in_elems.iter().map(|&e| e.div_ceil(self.slots) as u64).sum();
        let cts_down: u64 =
            counts.linear_out_elems.iter().map(|&e| e.div_ceil(self.slots) as u64).sum();
        let base_ot_bytes = (counts.base_ots as f64 * self.bytes_per_base_ot) as u64;
        let setup_flights = if counts.base_ots > 0 || counts.seed_bytes > 0 { 2 } else { 0 };
        TrafficSnapshot {
            bytes_client_to_server: cts_up * self.ct_bytes,
            bytes_server_to_client: cts_down * self.ct_bytes + base_ot_bytes + counts.seed_bytes,
            messages: cts_up + cts_down + setup_flights,
            // One round trip per linear layer's ciphertext exchange,
            // plus one for the whole session's base-OT/seed shipment
            // (layer-batched).
            flights: 2 * counts.linear_in_elems.len() as u64 + setup_flights,
        }
    }

    /// What the same correlations would have cost on the wire under the
    /// pre-compression expanded dealing: triples, garbled tables and
    /// extension pads garbler→evaluator (down), the extension's
    /// `u`-matrix evaluator→garbler (up), on top of the ciphertext and
    /// base-OT flows. Reported next to [`OfflineCostModel::offline_traffic`]
    /// so the planner can show the compression win.
    pub fn expanded_traffic(&self, counts: &OpCounts) -> TrafficSnapshot {
        let cts_up: u64 =
            counts.linear_in_elems.iter().map(|&e| e.div_ceil(self.slots) as u64).sum();
        let cts_down: u64 =
            counts.linear_out_elems.iter().map(|&e| e.div_ceil(self.slots) as u64).sum();
        let triple_bytes = (counts.bit_triples as f64 * self.bytes_per_bit_triple) as u64;
        let gc_bytes = (counts.and_gates as f64 * self.bytes_per_and_gate
            + counts.xor_gates as f64 * self.bytes_per_xor_gate) as u64;
        let base_ot_bytes = (counts.base_ots as f64 * self.bytes_per_base_ot) as u64;
        let ext_down = (counts.ext_ots as f64 * self.bytes_per_ext_ot * 2.0 / 3.0) as u64;
        let ext_up = (counts.ext_ots as f64 * self.bytes_per_ext_ot / 3.0) as u64;
        let ot_flights = if counts.base_ots + counts.ext_ots > 0 { 2 } else { 0 };
        TrafficSnapshot {
            bytes_client_to_server: cts_up * self.ct_bytes + ext_up,
            bytes_server_to_client: cts_down * self.ct_bytes
                + triple_bytes
                + gc_bytes
                + base_ot_bytes
                + ext_down,
            messages: cts_up + cts_down + ot_flights,
            flights: 2 * counts.linear_in_elems.len() as u64 + ot_flights,
        }
    }

    /// Modelled offline compute seconds.
    pub fn offline_seconds(&self, counts: &OpCounts) -> f64 {
        counts.macs as f64 * self.sec_per_mac + counts.and_gates as f64 * self.sec_per_and_gate
    }

    /// Charges the modelled traffic onto a live counter as phantom bytes
    /// (used when a single counter should reflect the full protocol).
    pub fn charge(
        &self,
        counter: &c2pi_transport::TrafficCounter,
        counts: &OpCounts,
    ) -> TrafficSnapshot {
        let t = self.offline_traffic(counts);
        counter.charge_phantom(Side::Client, t.bytes_client_to_server, t.flights / 2);
        counter.charge_phantom(Side::Server, t.bytes_server_to_client, t.flights - t.flights / 2);
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts() -> OpCounts {
        OpCounts {
            linear_in_elems: vec![3 * 32 * 32, 4096],
            linear_out_elems: vec![64 * 32 * 32, 512],
            macs: 1_000_000,
            relu_elems: 2048,
            pool_windows: 512,
            bit_triples: 2048 * 187,
            and_gates: 0,
            xor_gates: 0,
            base_ots: 128,
            ext_ots: 0,
            seed_bytes: 64,
            expanded_bytes: 0,
        }
    }

    #[test]
    fn delphi_offline_dwarfs_cheetah() {
        let c = counts();
        let d = OfflineCostModel::delphi();
        let ch = OfflineCostModel::cheetah();
        assert!(d.offline_traffic(&c).bytes_total() > 2 * ch.offline_traffic(&c).bytes_total());
        assert!(d.offline_seconds(&c) > 5.0 * ch.offline_seconds(&c));
    }

    #[test]
    fn traffic_scales_with_layer_sizes() {
        let small =
            OpCounts { linear_in_elems: vec![100], linear_out_elems: vec![100], ..counts() };
        let big = OpCounts {
            linear_in_elems: vec![100_000],
            linear_out_elems: vec![100_000],
            ..counts()
        };
        let m = OfflineCostModel::delphi();
        assert!(m.offline_traffic(&big).bytes_total() > m.offline_traffic(&small).bytes_total());
    }

    #[test]
    fn zero_counts_cost_nothing() {
        let zero = OpCounts::default();
        let m = OfflineCostModel::cheetah();
        assert_eq!(m.offline_traffic(&zero).bytes_total(), 0);
        assert_eq!(m.expanded_traffic(&zero).bytes_total(), 0);
        assert_eq!(m.offline_seconds(&zero), 0.0);
    }

    #[test]
    fn xor_gates_are_free_on_the_wire() {
        // Free-XOR: piling on XOR gates must not move the modelled
        // expanded traffic, while AND gates must.
        let m = OfflineCostModel::delphi();
        let base = OpCounts { and_gates: 10_000, ..counts() };
        let xor_heavy = OpCounts { xor_gates: 10_000_000, ..base.clone() };
        assert_eq!(
            m.expanded_traffic(&base).bytes_total(),
            m.expanded_traffic(&xor_heavy).bytes_total()
        );
        let and_heavy = OpCounts { and_gates: 20_000, ..base.clone() };
        assert!(
            m.expanded_traffic(&and_heavy).bytes_total() > m.expanded_traffic(&base).bytes_total()
        );
    }

    #[test]
    fn seed_compression_collapses_correlation_traffic() {
        // A GC-heavy count set: under expanded dealing the tables and
        // extension labels dominate; under seed-compressed dealing only
        // the DealtSeed bytes remain of them.
        let c = OpCounts { and_gates: 500_000, ext_ots: 100_000, ..counts() };
        let m = OfflineCostModel::delphi();
        let dealt = m.offline_traffic(&c);
        let expanded = m.expanded_traffic(&c);
        let correlation_dealt = dealt.bytes_total() - m.offline_traffic(&counts()).bytes_total();
        let correlation_expanded =
            expanded.bytes_total() - m.offline_traffic(&counts()).bytes_total();
        assert!(
            correlation_expanded > 50 * correlation_dealt.max(1),
            "expanded {correlation_expanded} vs dealt {correlation_dealt}"
        );
        assert!(expanded.bytes_total() > dealt.bytes_total());
    }
}
