//! # c2pi-pi
//!
//! Two-party private-inference engines over the `c2pi-mpc` substrate:
//!
//! * [`engine::PiBackend::Delphi`] — linear layers via the masked-linear
//!   protocol, non-linear layers (ReLU, max pool) via garbled circuits;
//! * [`engine::PiBackend::Cheetah`] — the same linear protocol (its HE
//!   offline modelled more cheaply) with comparison-based non-linear
//!   layers whose online traffic is two orders of magnitude leaner.
//!
//! [`engine::run_prefix`] executes the crypto-layer prefix of a model on
//! a client-held input: both parties run as real threads exchanging
//! bytes through a counted channel; the result is a pair of additive
//! shares of the boundary activation plus a [`report::PiReport`] that a
//! [`c2pi_transport::NetModel`] converts into Table-II-style latency and
//! communication numbers.
//!
//! The offline phases that real Delphi/Cheetah run with homomorphic
//! encryption are charged analytically by [`cost::OfflineCostModel`]
//! (see DESIGN.md §3 for the substitution argument).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
pub mod engine;
pub mod error;
pub mod report;

pub use engine::{run_prefix, PiBackend, PiConfig, PiOutcome};
pub use error::PiError;
pub use report::{OpCounts, PiReport};

/// Convenience result alias for PI operations.
pub type Result<T> = std::result::Result<T, PiError>;
