//! # c2pi-pi
//!
//! Session-based two-party private inference over the `c2pi-mpc`
//! substrate, with pluggable protocol backends:
//!
//! * [`backend::delphi()`] — linear layers via the masked-linear
//!   protocol, non-linear layers (ReLU, max pool) via garbled circuits;
//! * [`backend::cheetah()`] — the same linear protocol (its HE offline
//!   modelled more cheaply) with comparison-based non-linear layers
//!   whose online traffic is two orders of magnitude leaner;
//! * your own — implement [`backend::PiBackendImpl`] in a new module and
//!   hand it to [`session::PiSession::with_backend`]; the engine has no
//!   backend-specific code paths.
//!
//! The serving API is the two-phase [`session::PiSession`]:
//!
//! ```
//! use c2pi_pi::engine::{specs_of, PiConfig};
//! use c2pi_pi::session::PiSession;
//! use c2pi_nn::layers::{Conv2d, Relu};
//! use c2pi_nn::Sequential;
//! use c2pi_tensor::Tensor;
//!
//! # fn main() -> c2pi_pi::Result<()> {
//! let mut prefix = Sequential::new();
//! prefix.push(Conv2d::new(1, 2, 3, 1, 1, 1, 1));
//! prefix.push(Relu::new());
//!
//! // Compile once per deployment.
//! let cfg = PiConfig::default();
//! let mut session = PiSession::new(&specs_of(&prefix), [1, 8, 8], cfg)?;
//! // Offline phase: correlated randomness for 4 future inferences.
//! session.preprocess(4)?;
//! // Online phase: consumes one pooled material set per input.
//! let x = Tensor::rand_uniform(&[1, 1, 8, 8], -1.0, 1.0, 2);
//! let outcome = session.infer(&x)?;
//! assert_eq!(outcome.report.preprocessing.generated_inline, 0);
//! // For concurrent serving, convert to the cheaply cloneable handle
//! // whose inference entry points take `&self`:
//! let shared = session.into_shared();
//! assert_eq!(shared.backend_name(), "cheetah");
//! # Ok(())
//! # }
//! ```
//!
//! Both parties run as real threads exchanging bytes through a counted
//! channel; the result is a pair of additive shares of the boundary
//! activation plus a [`report::PiReport`] that a
//! [`c2pi_transport::NetModel`] converts into Table-II-style latency and
//! communication numbers. [`engine::run_prefix`] remains as the one-shot
//! wrapper (compile + preprocess(1) + infer).
//!
//! The offline phases that real Delphi/Cheetah run with homomorphic
//! encryption are charged analytically by [`cost::OfflineCostModel`]
//! (see DESIGN.md §3 for the substitution argument); the
//! [`report::PreprocessLedger`] separately records the wall-clock cost
//! of the dealer stand-in.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod calibrate;
pub mod cost;
pub mod engine;
pub mod error;
mod plan;
pub mod pool;
pub mod report;
pub mod session;
pub mod shard;
pub mod store;

pub use backend::{cheetah, delphi, IntoBackend, PiBackendImpl};
pub use calibrate::{Calibrator, OnlineCostModel};
pub use engine::{run_prefix, PiBackend, PiConfig, PiOutcome};
pub use error::PiError;
pub use pool::{
    InferenceMaterial, MaterialPool, PoolTake, Replenisher, SeedAllocator, SessionCore,
};
pub use report::{OpCounts, PiReport, PreprocessLedger};
pub use session::{PartyOutcome, PiSession, SharedPiSession};
pub use shard::ShardedMaterialPool;
pub use store::{MaterialStore, RestoreReport};

/// Convenience result alias for PI operations.
pub type Result<T> = std::result::Result<T, PiError>;
