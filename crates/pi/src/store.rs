//! Crash-safe persistent spill for preprocessed material — the durable
//! layer between the offline and online phases.
//!
//! Under seed-compressed dealing a pooled material set is a pure
//! function of its 64-bit seed (plus the session fingerprint), so the
//! store never writes expanded correlations: it is an append-only log
//! of *seed events* — "seed s was dealt into the pool", "seed s was
//! consumed" — each carrying the ledger snapshot at that moment. A
//! restart replays the log, re-expands the dealt-but-unconsumed seeds
//! locally and resumes the exact ledger, which is why a warm-booted
//! server serves bit-identical results without re-preprocessing.
//!
//! ## On-disk format (all integers little-endian)
//!
//! ```text
//! header (32 B):
//!   magic      8 B   "C2PIMST\0"
//!   version    4 B   format version (currently 1)
//!   reserved   4 B   zero
//!   fingerprint 8 B  SessionCore::session_fingerprint of the writer
//!   checksum   8 B   FNV-1a over the preceding 24 bytes
//! record (repeated):
//!   len        4 B   payload length (excludes kind and checksum)
//!   kind       1 B   1 = dealt, 2 = consumed, 3 = flush
//!   payload    len B seed, stream position, ledger snapshot
//!   checksum   8 B   FNV-1a over kind ‖ payload
//! ```
//!
//! Records are appended without per-record fsync: on a process kill the
//! OS page cache still carries every completed `write`, and a torn tail
//! record (power loss, mid-write crash) fails its length or checksum
//! check on the next open and is truncated away — losing at most the
//! very last event, never corrupting the prefix. A graceful drain
//! appends a flush marker and fsyncs.
//!
//! ## Threat model
//!
//! A persisted seed is exactly as sensitive as the expanded material it
//! derives — anyone who reads the file (and knows the public session
//! shape) can expand every pending correlation. The store therefore
//! creates its file with mode `0o600` on Unix, and the session
//! fingerprint in the header doubles as a replay guard: a store written
//! by one deployment refuses to open under another, and the fingerprint
//! enters the expansion PRG as the [`DealtSeed`](c2pi_mpc::dealer::DealtSeed)
//! nonce, so even a copied seed value expands to unrelated bits under a
//! different deployment.

use crate::report::PreprocessLedger;
use crate::{PiError, Result};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 8] = b"C2PIMST\0";
const VERSION: u32 = 1;
const HEADER_LEN: usize = 32;
/// Payload of the current record version: seed, stream position and the
/// ten ledger fields.
const PAYLOAD_LEN: usize = 8 * 12;
/// Upper bound accepted while scanning — anything larger is corruption,
/// not a record.
const MAX_PAYLOAD_LEN: u32 = 1 << 16;

/// FNV-1a 64-bit — small, dependency-free, and plenty for torn-write
/// detection (this is an integrity check, not an authenticity one).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn store_err(path: &Path, op: &str, e: std::io::Error) -> PiError {
    PiError::Store(format!("{}: {op}: {e}", path.display()))
}

/// Event kinds in the store log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum RecordKind {
    /// A seed was dealt and its material pushed into the pool.
    Dealt = 1,
    /// A (previously dealt, or inline) seed's material was consumed.
    Consumed = 2,
    /// Graceful-drain marker carrying the final ledger snapshot.
    Flush = 3,
}

impl RecordKind {
    fn from_byte(b: u8) -> Option<RecordKind> {
        match b {
            1 => Some(RecordKind::Dealt),
            2 => Some(RecordKind::Consumed),
            3 => Some(RecordKind::Flush),
            _ => None,
        }
    }
}

/// What replaying a store log recovered; consumed by
/// [`MaterialPool::attach_store`](crate::pool::MaterialPool::attach_store).
#[derive(Debug, Clone, Default)]
pub(crate) struct StoreScan {
    /// Seeds dealt but not consumed, in deal order.
    pub pending: Vec<u64>,
    /// Highest seed-stream position any record carries. For an
    /// exclusive (unsharded) pool appends are monotone so this is the
    /// last record's position; a sharded deployment's segments each see
    /// only a subsequence of the global stream, so the max — not the
    /// tail — is the honest watermark.
    pub drawn: u64,
    /// Ledger snapshot of the last record.
    pub ledger: PreprocessLedger,
    /// Valid records replayed.
    pub records: usize,
    /// Whether a torn tail was truncated away.
    pub truncated: bool,
}

/// Warm-boot summary returned by
/// [`MaterialPool::attach_store`](crate::pool::MaterialPool::attach_store).
#[derive(Debug, Clone, Default)]
pub struct RestoreReport {
    /// Material sets re-expanded from persisted seeds into the pool.
    pub restored: usize,
    /// Seeds the previous process had drawn (the stream position the
    /// pool fast-forwarded to).
    pub drawn: u64,
    /// Valid records the scan replayed.
    pub records: usize,
    /// Whether a torn tail record (crash mid-append) was discarded.
    pub truncated_tail: bool,
}

/// An open, append-positioned store file. All mutation goes through
/// `MaterialStore::append`/`MaterialStore::sync`, driven by the
/// owning pool under its lock.
#[derive(Debug)]
pub struct MaterialStore {
    file: File,
    path: PathBuf,
}

impl MaterialStore {
    /// Opens (or creates) the store at `path` for the deployment
    /// identified by `fingerprint`, replaying any existing log. A torn
    /// tail record is truncated away (reported in the scan); a
    /// fingerprint or header mismatch is an error — a store never
    /// silently serves a different deployment.
    pub(crate) fn open(path: &Path, fingerprint: u64) -> Result<(MaterialStore, StoreScan)> {
        let mut opts = OpenOptions::new();
        opts.read(true).write(true).create(true);
        #[cfg(unix)]
        {
            use std::os::unix::fs::OpenOptionsExt;
            opts.mode(0o600);
        }
        let mut file = opts.open(path).map_err(|e| store_err(path, "open", e))?;
        let len = file.metadata().map_err(|e| store_err(path, "stat", e))?.len();
        if len == 0 {
            let mut header = Vec::with_capacity(HEADER_LEN);
            header.extend_from_slice(MAGIC);
            header.extend_from_slice(&VERSION.to_le_bytes());
            header.extend_from_slice(&0u32.to_le_bytes());
            header.extend_from_slice(&fingerprint.to_le_bytes());
            header.extend_from_slice(&fnv1a(&header[..24]).to_le_bytes());
            file.write_all(&header).map_err(|e| store_err(path, "write header", e))?;
            file.sync_all().map_err(|e| store_err(path, "sync header", e))?;
            return Ok((MaterialStore { file, path: path.to_path_buf() }, StoreScan::default()));
        }
        let mut buf = Vec::with_capacity(len as usize);
        file.read_to_end(&mut buf).map_err(|e| store_err(path, "read", e))?;
        let scan = Self::replay(path, &buf, fingerprint)?;
        if scan.truncated {
            let good = Self::good_prefix_len(&buf);
            file.set_len(good as u64).map_err(|e| store_err(path, "truncate torn tail", e))?;
        }
        file.seek(SeekFrom::End(0)).map_err(|e| store_err(path, "seek", e))?;
        Ok((MaterialStore { file, path: path.to_path_buf() }, scan))
    }

    /// Byte length of the valid header+records prefix of `buf`.
    fn good_prefix_len(buf: &[u8]) -> usize {
        let mut at = HEADER_LEN;
        while let Some(next) = Self::record_end(buf, at) {
            at = next;
        }
        at
    }

    /// End offset of a valid record starting at `at`, or `None`.
    fn record_end(buf: &[u8], at: usize) -> Option<usize> {
        if at + 5 > buf.len() {
            return None;
        }
        let len = u32::from_le_bytes([buf[at], buf[at + 1], buf[at + 2], buf[at + 3]]);
        if len > MAX_PAYLOAD_LEN {
            return None;
        }
        let end = at + 5 + len as usize + 8;
        if end > buf.len() {
            return None;
        }
        let body = &buf[at + 4..at + 5 + len as usize];
        let mut sum = [0u8; 8];
        sum.copy_from_slice(&buf[end - 8..end]);
        if fnv1a(body) != u64::from_le_bytes(sum) {
            return None;
        }
        RecordKind::from_byte(buf[at + 4])?;
        Some(end)
    }

    fn replay(path: &Path, buf: &[u8], fingerprint: u64) -> Result<StoreScan> {
        let fail = |why: String| PiError::Store(format!("{}: {why}", path.display()));
        if buf.len() < HEADER_LEN {
            return Err(fail("truncated header".into()));
        }
        if &buf[..8] != MAGIC {
            return Err(fail("bad magic (not a material store)".into()));
        }
        let mut w4 = [0u8; 4];
        w4.copy_from_slice(&buf[8..12]);
        let version = u32::from_le_bytes(w4);
        if version != VERSION {
            return Err(fail(format!("unsupported version {version}")));
        }
        let mut w8 = [0u8; 8];
        w8.copy_from_slice(&buf[16..24]);
        let file_fp = u64::from_le_bytes(w8);
        w8.copy_from_slice(&buf[24..32]);
        if fnv1a(&buf[..24]) != u64::from_le_bytes(w8) {
            return Err(fail("header checksum mismatch".into()));
        }
        if file_fp != fingerprint {
            return Err(fail(format!(
                "belongs to a different deployment (fingerprint {file_fp:#018x}, \
                 session {fingerprint:#018x}); refusing to reuse seeds across sessions"
            )));
        }
        let mut scan = StoreScan::default();
        let mut at = HEADER_LEN;
        while let Some(end) = Self::record_end(buf, at) {
            let kind = RecordKind::from_byte(buf[at + 4]).expect("validated by record_end");
            let payload = &buf[at + 5..end - 8];
            if payload.len() != PAYLOAD_LEN {
                return Err(fail(format!("record payload length {}", payload.len())));
            }
            let word = |i: usize| {
                let mut w = [0u8; 8];
                w.copy_from_slice(&payload[8 * i..8 * i + 8]);
                u64::from_le_bytes(w)
            };
            let seed = word(0);
            scan.drawn = scan.drawn.max(word(1));
            scan.ledger = PreprocessLedger {
                generated_offline: word(2),
                generated_inline: word(3),
                consumed: word(4),
                available: word(5),
                generation_seconds: f64::from_bits(word(6)),
                base_ots: word(7),
                extended_ots: word(8),
                seed_bytes: word(9),
                expanded_bytes: word(10),
                restored: word(11),
            };
            match kind {
                RecordKind::Dealt => scan.pending.push(seed),
                RecordKind::Consumed => {
                    if let Some(i) = scan.pending.iter().position(|&s| s == seed) {
                        scan.pending.remove(i);
                    }
                }
                RecordKind::Flush => {}
            }
            scan.records += 1;
            at = end;
        }
        scan.truncated = at < buf.len();
        Ok(scan)
    }

    /// Appends one event. No fsync — see the module docs for the
    /// durability argument.
    pub(crate) fn append(
        &mut self,
        kind: RecordKind,
        seed: u64,
        drawn: u64,
        ledger: &PreprocessLedger,
    ) -> Result<()> {
        let mut payload = Vec::with_capacity(PAYLOAD_LEN);
        for v in [
            seed,
            drawn,
            ledger.generated_offline,
            ledger.generated_inline,
            ledger.consumed,
            ledger.available,
            ledger.generation_seconds.to_bits(),
            ledger.base_ots,
            ledger.extended_ots,
            ledger.seed_bytes,
            ledger.expanded_bytes,
            ledger.restored,
        ] {
            payload.extend_from_slice(&v.to_le_bytes());
        }
        let mut rec = Vec::with_capacity(5 + PAYLOAD_LEN + 8);
        rec.extend_from_slice(&(PAYLOAD_LEN as u32).to_le_bytes());
        rec.push(kind as u8);
        rec.extend_from_slice(&payload);
        rec.extend_from_slice(&fnv1a(&rec[4..]).to_le_bytes());
        self.file.write_all(&rec).map_err(|e| store_err(&self.path, "append", e))
    }

    /// Fsyncs the log (graceful drain).
    pub(crate) fn sync(&mut self) -> Result<()> {
        self.file.sync_all().map_err(|e| store_err(&self.path, "sync", e))
    }

    /// The file this store persists to.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn tmp(name: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        std::env::temp_dir().join(format!(
            "c2pi-store-{}-{}-{name}.bin",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ))
    }

    fn ledger(consumed: u64) -> PreprocessLedger {
        PreprocessLedger {
            generated_offline: 3,
            consumed,
            generation_seconds: 0.25,
            seed_bytes: 81,
            expanded_bytes: 123_456,
            ..Default::default()
        }
    }

    #[test]
    fn roundtrips_dealt_and_consumed_events() {
        let path = tmp("roundtrip");
        let fp = 0xABCD;
        {
            let (mut store, scan) = MaterialStore::open(&path, fp).unwrap();
            assert_eq!(scan.records, 0);
            store.append(RecordKind::Dealt, 11, 1, &ledger(0)).unwrap();
            store.append(RecordKind::Dealt, 22, 2, &ledger(0)).unwrap();
            store.append(RecordKind::Dealt, 33, 3, &ledger(0)).unwrap();
            store.append(RecordKind::Consumed, 22, 3, &ledger(1)).unwrap();
            store.append(RecordKind::Flush, 0, 3, &ledger(1)).unwrap();
            store.sync().unwrap();
        }
        let (_store, scan) = MaterialStore::open(&path, fp).unwrap();
        assert_eq!(scan.records, 5);
        assert_eq!(scan.pending, vec![11, 33], "consumed seed dropped, order kept");
        assert_eq!(scan.drawn, 3);
        assert_eq!(scan.ledger, ledger(1));
        assert!(!scan.truncated);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let path = tmp("torn");
        {
            let (mut store, _) = MaterialStore::open(&path, 7).unwrap();
            store.append(RecordKind::Dealt, 5, 1, &ledger(0)).unwrap();
            store.append(RecordKind::Dealt, 6, 2, &ledger(0)).unwrap();
        }
        // Simulate a crash mid-append: a record prefix without its tail.
        {
            use std::io::Write as _;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&[96, 0, 0, 0, 1, 42, 42]).unwrap();
        }
        let before = std::fs::metadata(&path).unwrap().len();
        let (_store, scan) = MaterialStore::open(&path, 7).unwrap();
        assert!(scan.truncated);
        assert_eq!(scan.pending, vec![5, 6], "intact prefix fully recovered");
        assert!(std::fs::metadata(&path).unwrap().len() < before, "tail cut off");
        // Reopening after the repair is clean.
        let (_store, scan2) = MaterialStore::open(&path, 7).unwrap();
        assert!(!scan2.truncated);
        assert_eq!(scan2.pending, vec![5, 6]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_record_checksum_cuts_the_log_there() {
        let path = tmp("corrupt");
        {
            let (mut store, _) = MaterialStore::open(&path, 9).unwrap();
            store.append(RecordKind::Dealt, 1, 1, &ledger(0)).unwrap();
            store.append(RecordKind::Dealt, 2, 2, &ledger(0)).unwrap();
        }
        // Flip a byte inside the second record's payload.
        let mut bytes = std::fs::read(&path).unwrap();
        let second = HEADER_LEN + 5 + PAYLOAD_LEN + 8 + 10;
        bytes[second] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let (_store, scan) = MaterialStore::open(&path, 9).unwrap();
        assert!(scan.truncated);
        assert_eq!(scan.pending, vec![1], "log ends at the corruption");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn fingerprint_mismatch_refuses_to_open() {
        let path = tmp("fp");
        {
            let (mut store, _) = MaterialStore::open(&path, 100).unwrap();
            store.append(RecordKind::Dealt, 1, 1, &ledger(0)).unwrap();
        }
        let err = MaterialStore::open(&path, 101).unwrap_err();
        assert!(matches!(err, PiError::Store(_)), "got {err:?}");
        assert!(err.to_string().contains("different deployment"));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn non_store_file_is_rejected() {
        let path = tmp("junk");
        std::fs::write(&path, b"definitely not a material store file, no sir").unwrap();
        assert!(MaterialStore::open(&path, 1).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[cfg(unix)]
    #[test]
    fn store_file_is_owner_only() {
        use std::os::unix::fs::PermissionsExt;
        let path = tmp("perms");
        let _ = MaterialStore::open(&path, 1).unwrap();
        let mode = std::fs::metadata(&path).unwrap().permissions().mode();
        assert_eq!(mode & 0o777, 0o600, "persisted seeds are as sensitive as material");
        std::fs::remove_file(&path).unwrap();
    }
}
