//! Compilation of a model's crypto prefix into an execution plan.
//!
//! Compilation is the per-deployment work a [`crate::session::PiSession`]
//! does **once**: shape inference, server-side weight encoding into the
//! ring, and the backend-independent operation counts. Per-inference
//! correlated randomness is *not* generated here — that is the offline
//! phase (`PiSession::preprocess`), which runs the dealer against this
//! plan.

use crate::report::OpCounts;
use crate::{PiError, Result};
use c2pi_mpc::ring::RingMatrix;
use c2pi_mpc::FixedPoint;
use c2pi_nn::LayerSpec;
use c2pi_tensor::conv::Conv2dGeom;

/// Public per-layer execution plan (both parties know the crypto-prefix
/// architecture; only weights are server-private).
#[derive(Debug, Clone)]
pub(crate) enum Step {
    Conv { c: usize, h: usize, w: usize, geom: Conv2dGeom },
    Fc { k: usize },
    Relu { n: usize },
    MaxPool { c: usize, h: usize, w: usize },
    AvgPool { c: usize, h: usize, w: usize, window: usize, stride: usize },
    Flatten,
    Affine,
}

/// Server-side constants of a step, encoded into the ring once per
/// session (weights never change between inferences).
#[derive(Debug, Clone)]
pub(crate) enum StepData {
    Lin { w: RingMatrix, bias2f: Vec<u64>, cols: usize },
    Affine { scale: Vec<u64>, shift2f: Vec<u64> },
    None,
}

/// A compiled crypto prefix: steps, per-step server constants, the
/// backend-independent cost counts, and the public output shape.
#[derive(Debug, Clone)]
pub(crate) struct Plan {
    pub steps: Vec<Step>,
    pub data: Vec<StepData>,
    pub base_counts: OpCounts,
    pub in_chw: (usize, usize, usize),
    pub out_dims: Vec<usize>,
}

/// Compiles layer specs against a `[c, h, w]` input shape.
pub(crate) fn compile(
    specs: &[LayerSpec],
    in_chw: (usize, usize, usize),
    fp: FixedPoint,
) -> Result<Plan> {
    let (c, h, w) = in_chw;
    let mut steps = Vec::with_capacity(specs.len());
    let mut data = Vec::with_capacity(specs.len());
    let mut counts = OpCounts::default();
    let scale2 = fp.scale() * fp.scale();
    // Current public shape: Some((c,h,w)) for NCHW, or flat length.
    let mut cur_chw: Option<(usize, usize, usize)> = Some((c, h, w));
    let mut cur_flat = c * h * w;
    for spec in specs {
        match spec {
            LayerSpec::Conv2d { weight, bias, geom } => {
                let (cc, hh, ww) =
                    cur_chw.ok_or_else(|| PiError::BadConfig("conv after flatten".into()))?;
                let (oc, ic, k, _) = weight.shape().as_nchw()?;
                if ic != cc {
                    return Err(PiError::BadConfig(format!(
                        "conv expects {ic} channels, activation has {cc}"
                    )));
                }
                let (oh, ow) = geom.output_hw(hh, ww)?;
                let ckk = ic * k * k;
                let w_ring = RingMatrix::from_vec(fp.encode_tensor(weight), oc, ckk)?;
                let bias2f: Vec<u64> =
                    bias.as_slice().iter().map(|&b| (b * scale2).round() as i64 as u64).collect();
                counts.linear_in_elems.push(cc * hh * ww);
                counts.linear_out_elems.push(oc * oh * ow);
                counts.macs += (oc * ckk * oh * ow) as u64;
                steps.push(Step::Conv { c: cc, h: hh, w: ww, geom: *geom });
                data.push(StepData::Lin { w: w_ring, bias2f, cols: oh * ow });
                cur_chw = Some((oc, oh, ow));
                cur_flat = oc * oh * ow;
            }
            LayerSpec::Linear { weight, bias } => {
                let (k_in, out) = weight.shape().as_matrix()?;
                if k_in != cur_flat {
                    return Err(PiError::BadConfig(format!(
                        "linear expects {k_in} features, activation has {cur_flat}"
                    )));
                }
                // Ring weight as [out, in] (transposed for column input).
                let wt = weight.transpose()?;
                let w_ring = RingMatrix::from_vec(fp.encode_tensor(&wt), out, k_in)?;
                let bias2f: Vec<u64> =
                    bias.as_slice().iter().map(|&b| (b * scale2).round() as i64 as u64).collect();
                counts.linear_in_elems.push(k_in);
                counts.linear_out_elems.push(out);
                counts.macs += (k_in * out) as u64;
                steps.push(Step::Fc { k: k_in });
                data.push(StepData::Lin { w: w_ring, bias2f, cols: 1 });
                cur_chw = None;
                cur_flat = out;
            }
            LayerSpec::Relu => {
                counts.relu_elems += cur_flat;
                steps.push(Step::Relu { n: cur_flat });
                data.push(StepData::None);
            }
            LayerSpec::MaxPool2d { window, stride } => {
                let (cc, hh, ww) =
                    cur_chw.ok_or_else(|| PiError::BadConfig("pool after flatten".into()))?;
                if *window != 2 || *stride != 2 || hh % 2 != 0 || ww % 2 != 0 {
                    return Err(PiError::BadConfig(
                        "secure max pooling supports 2x2 stride-2 on even sizes".into(),
                    ));
                }
                counts.pool_windows += cc * (hh / 2) * (ww / 2);
                steps.push(Step::MaxPool { c: cc, h: hh, w: ww });
                data.push(StepData::None);
                cur_chw = Some((cc, hh / 2, ww / 2));
                cur_flat = cc * (hh / 2) * (ww / 2);
            }
            LayerSpec::AvgPool2d { window, stride } => {
                let (cc, hh, ww) =
                    cur_chw.ok_or_else(|| PiError::BadConfig("pool after flatten".into()))?;
                if hh < *window || ww < *window {
                    return Err(PiError::BadConfig("average pool window too large".into()));
                }
                let oh = (hh - window) / stride + 1;
                let ow = (ww - window) / stride + 1;
                steps.push(Step::AvgPool { c: cc, h: hh, w: ww, window: *window, stride: *stride });
                data.push(StepData::None);
                cur_chw = Some((cc, oh, ow));
                cur_flat = cc * oh * ow;
            }
            LayerSpec::Flatten => {
                steps.push(Step::Flatten);
                data.push(StepData::None);
                cur_chw = None;
            }
            LayerSpec::Affine { scale, shift } => {
                let (cc, hh, ww) =
                    cur_chw.ok_or_else(|| PiError::BadConfig("affine after flatten".into()))?;
                if scale.len() != cc || shift.len() != cc {
                    return Err(PiError::BadConfig("affine channel mismatch".into()));
                }
                let n = cc * hh * ww;
                // Broadcast per-channel scale/shift over the plane.
                let plane = hh * ww;
                let mut scale_ring = Vec::with_capacity(n);
                let mut shift2f = Vec::with_capacity(n);
                for ch in 0..cc {
                    let s_enc = fp.encode(scale[ch]);
                    let t_enc = (shift[ch] * scale2).round() as i64 as u64;
                    for _ in 0..plane {
                        scale_ring.push(s_enc);
                        shift2f.push(t_enc);
                    }
                }
                counts.linear_in_elems.push(n);
                counts.linear_out_elems.push(n);
                counts.macs += n as u64;
                steps.push(Step::Affine);
                data.push(StepData::Affine { scale: scale_ring, shift2f });
            }
            LayerSpec::Unsupported(d) => return Err(PiError::UnsupportedLayer(d.clone())),
        }
    }
    let out_dims: Vec<usize> = match cur_chw {
        Some((cc, hh, ww)) => vec![1, cc, hh, ww],
        None => vec![1, cur_flat],
    };
    Ok(Plan { steps, data, base_counts: counts, in_chw, out_dims })
}

#[cfg(test)]
mod tests {
    use super::*;
    use c2pi_nn::layers::{Conv2d, Flatten, Linear, MaxPool2d, Relu};
    use c2pi_nn::Sequential;

    fn specs() -> Vec<LayerSpec> {
        let mut s = Sequential::new();
        s.push(Conv2d::new(1, 3, 3, 1, 1, 1, 1));
        s.push(Relu::new());
        s.push(MaxPool2d::new(2, 2));
        s.push(Flatten::new());
        s.push(Linear::new(3 * 4 * 4, 5, 2));
        s.layers().iter().map(|l| l.spec()).collect()
    }

    #[test]
    fn compile_tracks_shapes_and_counts() {
        let plan = compile(&specs(), (1, 8, 8), FixedPoint::default()).unwrap();
        assert_eq!(plan.steps.len(), 5);
        assert_eq!(plan.out_dims, vec![1, 5]);
        assert_eq!(plan.base_counts.relu_elems, 3 * 8 * 8);
        assert_eq!(plan.base_counts.pool_windows, 3 * 4 * 4);
        assert_eq!(plan.base_counts.linear_in_elems.len(), 2);
        // Backend-dependent counts are not filled at compile time.
        assert_eq!(plan.base_counts.and_gates, 0);
        assert_eq!(plan.base_counts.bit_triples, 0);
    }

    #[test]
    fn compile_rejects_channel_mismatch() {
        let err = compile(&specs(), (2, 8, 8), FixedPoint::default());
        assert!(matches!(err, Err(PiError::BadConfig(_))));
    }
}
