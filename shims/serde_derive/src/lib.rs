//! No-op `Serialize`/`Deserialize` derives for the offline build.
//!
//! Nothing in the workspace serializes through serde (checkpoints use a
//! hand-rolled binary format in `c2pi-nn::serialize`), so the derives
//! only need to exist, not to generate code.

use proc_macro::TokenStream;

/// Accepts the standard `#[serde(...)]` helper attribute and emits
/// nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts the standard `#[serde(...)]` helper attribute and emits
/// nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
