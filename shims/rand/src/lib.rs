//! Minimal `rand`-compatible shim for the offline build.
//!
//! Provides the slice of the rand 0.9 API the workspace uses —
//! [`SeedableRng::seed_from_u64`], [`RngExt::random`] /
//! [`RngExt::random_range`] and [`seq::SliceRandom::shuffle`] — backed by
//! xoshiro256++ seeded through splitmix64 (the same construction rand
//! itself recommends for seeding). Deterministic in the seed.

/// A source of random 64-bit words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, matching `rand::SeedableRng`'s `u64` entry
/// point.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Typed sampling, standing in for rand 0.9's `Rng` extension methods.
pub trait RngExt: RngCore {
    /// A uniformly random value of `T` (for `f32`: uniform in `[0, 1)`).
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform sample from a half-open range.
    fn random_range<T: UniformRange>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample_range(self, range)
    }
}

/// Types samplable from the "standard" distribution.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// Types samplable uniformly from a `Range`.
pub trait UniformRange: Sized {
    /// Draws one value uniformly from `range`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: std::ops::Range<Self>) -> Self;
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 high bits give a uniform float in [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl UniformRange for f32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: std::ops::Range<Self>) -> Self {
        let u = f32::sample(rng);
        range.start + (range.end - range.start) * u
    }
}

impl UniformRange for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: std::ops::Range<Self>) -> Self {
        let u = f64::sample(rng);
        range.start + (range.end - range.start) * u
    }
}

impl UniformRange for usize {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: std::ops::Range<Self>) -> Self {
        let span = range.end - range.start;
        debug_assert!(span > 0, "empty range");
        // Rejection-free modulo is fine for the shim's test workloads.
        range.start + (rng.next_u64() as usize) % span
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ seeded via splitmix64 — the shim's `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers, standing in for `rand::seq`.
pub mod seq {
    use super::{RngCore, UniformRange};

    /// Fisher–Yates shuffling for slices.
    pub trait SliceRandom {
        /// Shuffles the slice in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = usize::sample_range(rng, 0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.random_range(0.0f32..1.0), b.random_range(0.0f32..1.0));
        }
    }

    #[test]
    fn range_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: f32 = rng.random_range(-0.5..2.0);
            assert!((-0.5..2.0).contains(&v));
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted);
    }

    #[test]
    fn standard_f32_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1000 {
            let v: f32 = rng.random();
            assert!((0.0..1.0).contains(&v));
        }
    }
}
