//! Minimal `criterion`-compatible benchmark harness for the offline
//! build.
//!
//! Supports the surface the workspace benches use — `criterion_group!` /
//! `criterion_main!`, `Criterion::bench_function`, `benchmark_group`
//! with `sample_size` / `measurement_time` / `bench_with_input` /
//! `iter_custom` — and reports mean / min / max wall-clock per
//! iteration. Statistical rigor (outlier analysis, regression
//! detection) is out of scope; swap in the real criterion by editing
//! `crates/bench/Cargo.toml` when a registry is available.
//!
//! ## CI hooks (shim-specific)
//!
//! Two additions the real criterion does differently, used by
//! `ci/bench_smoke.sh`:
//!
//! * CLI quick mode: `--test` runs every benchmark exactly once, and
//!   `--measurement-time <secs>` / `--sample-size <n>` *override* the
//!   benches' programmatic settings (real criterion treats the CLI as a
//!   default instead) — e.g.
//!   `cargo bench --bench serving_throughput -- --measurement-time 1`.
//!   Unknown flags are ignored.
//! * machine-readable results: when `CRITERION_OUT_JSON=<path>` is set,
//!   a JSON array of `{id, mean_ns, min_ns, max_ns, samples}` rows is
//!   written there when `criterion_main!`'s `main` returns.

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One finished benchmark's summary, collected for the JSON output.
struct Recorded {
    id: String,
    mean_ns: u128,
    min_ns: u128,
    max_ns: u128,
    samples: usize,
}

static RESULTS: Mutex<Vec<Recorded>> = Mutex::new(Vec::new());

fn minimal_json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Writes the collected benchmark summaries as a JSON array to the path
/// in `CRITERION_OUT_JSON`, if set. Called by `criterion_main!` after
/// all groups ran; harmless to call repeatedly or with nothing
/// recorded.
pub fn write_json_summary() {
    let Ok(path) = std::env::var("CRITERION_OUT_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let results = RESULTS.lock().expect("results mutex poisoned");
    let rows: Vec<String> = results
        .iter()
        .map(|r| {
            format!(
                "  {{\"id\": \"{}\", \"mean_ns\": {}, \"min_ns\": {}, \"max_ns\": {}, \
                 \"samples\": {}}}",
                minimal_json_escape(&r.id),
                r.mean_ns,
                r.min_ns,
                r.max_ns,
                r.samples
            )
        })
        .collect();
    let json = format!("[\n{}\n]\n", rows.join(",\n"));
    if let Err(e) = std::fs::write(&path, json) {
        eprintln!("criterion shim: cannot write {path}: {e}");
    }
}

/// Records one non-timing scalar (a counter, a ratio) as a results row
/// (shim-specific CI hook; real criterion has no counter channel).
///
/// The value lands in the `mean_ns`/`min_ns`/`max_ns` fields of an
/// ordinary `{id, mean_ns, ...}` row, rounded to an integer, with
/// `samples: 1` — so downstream tooling (`bench_summary`, `bench_guard`,
/// the BENCH_history.jsonl trail) handles counters with zero changes.
/// Scale fractional values before reporting (e.g. a throughput ratio as
/// `ratio * 1000.0`) and encode the unit in the id.
pub fn report_metric(id: &str, value: f64) {
    println!("{id:<40} metric {value:.3}");
    let v = value.max(0.0).round() as u128;
    RESULTS.lock().expect("results mutex poisoned").push(Recorded {
        id: id.to_string(),
        mean_ns: v,
        min_ns: v,
        max_ns: v,
        samples: 1,
    });
}

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark id combining a function name and a parameter, printed as
/// `name/param`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Creates an id from a name and a displayable parameter.
    pub fn new(name: impl Into<String>, param: impl std::fmt::Display) -> Self {
        BenchmarkId { label: format!("{}/{param}", name.into()) }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    target_samples: usize,
    target_time: Duration,
}

impl Bencher {
    /// Times `routine` repeatedly, recording per-iteration wall clock.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warm-up iteration outside the measurement.
        black_box(routine());
        let budget_start = Instant::now();
        for _ in 0..self.target_samples {
            let t = Instant::now();
            black_box(routine());
            self.samples.push(t.elapsed());
            if budget_start.elapsed() > self.target_time {
                break;
            }
        }
    }

    /// Lets the routine time itself (excluding per-sample setup), as
    /// `criterion::Bencher::iter_custom`: the closure receives an
    /// iteration count and returns the measured duration for that many
    /// iterations. The shim always asks for one iteration per sample.
    pub fn iter_custom<R: FnMut(u64) -> Duration>(&mut self, mut routine: R) {
        // One warm-up iteration outside the measurement.
        black_box(routine(1));
        let budget_start = Instant::now();
        for _ in 0..self.target_samples {
            let d = routine(1);
            self.samples.push(d);
            if budget_start.elapsed() > self.target_time {
                break;
            }
        }
    }
}

fn report(label: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{label:<40} (no samples)");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = samples.iter().min().expect("non-empty");
    let max = samples.iter().max().expect("non-empty");
    println!(
        "{label:<40} mean {mean:>12.3?}  min {min:>12.3?}  max {max:>12.3?}  ({} samples)",
        samples.len()
    );
    RESULTS.lock().expect("results mutex poisoned").push(Recorded {
        id: label.to_string(),
        mean_ns: mean.as_nanos(),
        min_ns: min.as_nanos(),
        max_ns: max.as_nanos(),
        samples: samples.len(),
    });
}

/// CLI-driven overrides of the benches' programmatic settings (quick
/// mode for CI smoke runs).
#[derive(Debug, Clone, Copy, Default)]
struct Overrides {
    sample_size: Option<usize>,
    measurement_time: Option<Duration>,
    test_mode: bool,
}

impl Overrides {
    /// Parses the bench binary's arguments, ignoring flags it does not
    /// know (cargo passes `--bench` etc.).
    fn from_args() -> Self {
        let mut o = Overrides::default();
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            match flag.as_str() {
                "--test" => o.test_mode = true,
                "--sample-size" => {
                    o.sample_size = it.next().and_then(|v| v.parse().ok());
                }
                "--measurement-time" => {
                    o.measurement_time =
                        it.next().and_then(|v| v.parse::<f64>().ok()).map(Duration::from_secs_f64);
                }
                _ => {}
            }
        }
        o
    }

    /// Effective settings given the bench's programmatic values.
    fn apply(&self, sample_size: usize, measurement_time: Duration) -> (usize, Duration) {
        if self.test_mode {
            return (1, Duration::from_millis(1));
        }
        (self.sample_size.unwrap_or(sample_size), self.measurement_time.unwrap_or(measurement_time))
    }
}

/// A named group of related benchmarks sharing sampling settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    overrides: Overrides,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measured iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Caps the total measurement time per benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let (samples, time) = self.overrides.apply(self.sample_size, self.measurement_time);
        let mut b = Bencher { samples: Vec::new(), target_samples: samples, target_time: time };
        f(&mut b);
        report(&format!("{}/{id}", self.name), &b.samples);
        self
    }

    /// Runs one parameterised benchmark in the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let (samples, time) = self.overrides.apply(self.sample_size, self.measurement_time);
        let mut b = Bencher { samples: Vec::new(), target_samples: samples, target_time: time };
        f(&mut b, input);
        report(&format!("{}/{id}", self.name), &b.samples);
        self
    }

    /// Finishes the group (printing is incremental, so this is a no-op).
    pub fn finish(&mut self) {}
}

/// Benchmark driver, mirroring `criterion::Criterion`. `Default`
/// construction reads the process arguments for the shim's quick-mode
/// flags (see the [module docs](self)).
pub struct Criterion {
    overrides: Overrides,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { overrides: Overrides::from_args() }
    }
}

impl Criterion {
    /// Runs one standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let (samples, time) = self.overrides.apply(20, Duration::from_secs(3));
        let mut b = Bencher { samples: Vec::new(), target_samples: samples, target_time: time };
        f(&mut b);
        report(name, &b.samples);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let overrides = self.overrides;
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
            measurement_time: Duration::from_secs(3),
            overrides,
            _criterion: self,
        }
    }
}

/// Declares a benchmark group function, as `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench `main`, as `criterion::criterion_main!`. On exit
/// the collected summaries are written to `CRITERION_OUT_JSON` when
/// that variable is set (shim-specific CI hook).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::write_json_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(3).measurement_time(Duration::from_millis(50));
        group.bench_with_input(BenchmarkId::new("square", 7), &7u64, |b, &n| {
            b.iter(|| black_box(n) * black_box(n))
        });
        group.bench_function("noop", |b| b.iter(|| black_box(1)));
        group.finish();
    }

    criterion_group!(benches, quick_bench);

    #[test]
    fn group_macro_compiles_and_runs() {
        benches();
    }

    #[test]
    fn benchmark_id_formats_like_criterion() {
        assert_eq!(BenchmarkId::new("conv", 32).to_string(), "conv/32");
    }

    #[test]
    fn iter_custom_records_the_reported_durations() {
        let mut b =
            Bencher { samples: Vec::new(), target_samples: 4, target_time: Duration::from_secs(1) };
        b.iter_custom(|iters| {
            assert_eq!(iters, 1);
            Duration::from_millis(2)
        });
        assert_eq!(b.samples.len(), 4);
        assert!(b.samples.iter().all(|d| *d == Duration::from_millis(2)));
    }

    #[test]
    fn overrides_apply_in_priority_order() {
        let none = Overrides::default();
        assert_eq!(none.apply(20, Duration::from_secs(3)), (20, Duration::from_secs(3)));
        let quick = Overrides {
            sample_size: Some(3),
            measurement_time: Some(Duration::from_secs(1)),
            test_mode: false,
        };
        assert_eq!(quick.apply(20, Duration::from_secs(3)), (3, Duration::from_secs(1)));
        let test = Overrides { test_mode: true, ..quick };
        assert_eq!(test.apply(20, Duration::from_secs(3)), (1, Duration::from_millis(1)));
    }

    #[test]
    fn json_rows_escape_quotes() {
        assert_eq!(minimal_json_escape(r#"a"b\c"#), r#"a\"b\\c"#);
    }

    #[test]
    fn report_metric_lands_as_an_integer_results_row() {
        report_metric("shim/test-metric/steals", 12.6);
        let results = RESULTS.lock().expect("results mutex poisoned");
        let row = results.iter().find(|r| r.id == "shim/test-metric/steals").expect("recorded");
        assert_eq!(row.mean_ns, 13);
        assert_eq!(row.min_ns, 13);
        assert_eq!(row.max_ns, 13);
        assert_eq!(row.samples, 1);
    }
}
