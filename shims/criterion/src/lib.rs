//! Minimal `criterion`-compatible benchmark harness for the offline
//! build.
//!
//! Supports the surface the workspace benches use — `criterion_group!` /
//! `criterion_main!`, `Criterion::bench_function`, `benchmark_group`
//! with `sample_size` / `measurement_time` / `bench_with_input` — and
//! reports mean / min / max wall-clock per iteration. Statistical rigor
//! (outlier analysis, regression detection) is out of scope; swap in the
//! real criterion by editing `crates/bench/Cargo.toml` when a registry
//! is available.

use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark id combining a function name and a parameter, printed as
/// `name/param`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Creates an id from a name and a displayable parameter.
    pub fn new(name: impl Into<String>, param: impl std::fmt::Display) -> Self {
        BenchmarkId { label: format!("{}/{param}", name.into()) }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    target_samples: usize,
    target_time: Duration,
}

impl Bencher {
    /// Times `routine` repeatedly, recording per-iteration wall clock.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warm-up iteration outside the measurement.
        black_box(routine());
        let budget_start = Instant::now();
        for _ in 0..self.target_samples {
            let t = Instant::now();
            black_box(routine());
            self.samples.push(t.elapsed());
            if budget_start.elapsed() > self.target_time {
                break;
            }
        }
    }
}

fn report(label: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{label:<40} (no samples)");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = samples.iter().min().expect("non-empty");
    let max = samples.iter().max().expect("non-empty");
    println!(
        "{label:<40} mean {mean:>12.3?}  min {min:>12.3?}  max {max:>12.3?}  ({} samples)",
        samples.len()
    );
}

/// A named group of related benchmarks sharing sampling settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measured iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Caps the total measurement time per benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            target_samples: self.sample_size,
            target_time: self.measurement_time,
        };
        f(&mut b);
        report(&format!("{}/{id}", self.name), &b.samples);
        self
    }

    /// Runs one parameterised benchmark in the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            target_samples: self.sample_size,
            target_time: self.measurement_time,
        };
        f(&mut b, input);
        report(&format!("{}/{id}", self.name), &b.samples);
        self
    }

    /// Finishes the group (printing is incremental, so this is a no-op).
    pub fn finish(&mut self) {}
}

/// Benchmark driver, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs one standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            target_samples: 20,
            target_time: Duration::from_secs(3),
        };
        f(&mut b);
        report(name, &b.samples);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
            measurement_time: Duration::from_secs(3),
            _criterion: self,
        }
    }
}

/// Declares a benchmark group function, as `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench `main`, as `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(3).measurement_time(Duration::from_millis(50));
        group.bench_with_input(BenchmarkId::new("square", 7), &7u64, |b, &n| {
            b.iter(|| black_box(n) * black_box(n))
        });
        group.bench_function("noop", |b| b.iter(|| black_box(1)));
        group.finish();
    }

    criterion_group!(benches, quick_bench);

    #[test]
    fn group_macro_compiles_and_runs() {
        benches();
    }

    #[test]
    fn benchmark_id_formats_like_criterion() {
        assert_eq!(BenchmarkId::new("conv", 32).to_string(), "conv/32");
    }
}
