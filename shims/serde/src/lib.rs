//! Minimal serde facade for the offline build.
//!
//! The workspace derives `Serialize`/`Deserialize` on its public data
//! types so downstream users can serialize them, but no code path inside
//! the workspace itself serializes through serde. This shim provides the
//! two marker traits plus the (no-op) derives so the annotations compile
//! without network access to crates.io. Swapping in real serde is a
//! one-line change in each crate's `Cargo.toml`.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
