//! Minimal `rayon`-compatible shim for the offline build.
//!
//! Implements the one parallel iterator shape the workspace uses —
//! `par_chunks_mut(n).enumerate().for_each(f)` — with real threads via
//! `std::thread::scope`, splitting the chunk list evenly across the
//! available cores. Falls back to sequential execution for small inputs
//! or single-core machines.

/// Parallel-iterator entry points, mirroring `rayon::prelude`.
pub mod prelude {
    pub use super::ParallelSliceMut;
}

/// Number of worker threads to use (available parallelism, capped so
/// short kernels don't drown in spawn overhead).
fn workers() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(16)
}

/// Mutable-slice chunking, mirroring `rayon::slice::ParallelSliceMut`.
pub trait ParallelSliceMut<T: Send> {
    /// Splits the slice into mutable chunks of `chunk_size` (the last may
    /// be shorter) to be processed in parallel.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
        ParChunksMut { slice: self, chunk_size }
    }
}

/// Borrowed parallel chunk iterator.
pub struct ParChunksMut<'a, T: Send> {
    slice: &'a mut [T],
    chunk_size: usize,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    /// Pairs every chunk with its index, as `rayon`'s `enumerate` does.
    pub fn enumerate(self) -> EnumeratedParChunksMut<'a, T> {
        EnumeratedParChunksMut { inner: self }
    }

    /// Runs `op` on every chunk across the worker pool.
    pub fn for_each<F>(self, op: F)
    where
        F: Fn(&mut [T]) + Send + Sync,
    {
        self.enumerate().for_each(|(_, chunk)| op(chunk));
    }
}

/// Enumerated variant of [`ParChunksMut`].
pub struct EnumeratedParChunksMut<'a, T: Send> {
    inner: ParChunksMut<'a, T>,
}

impl<T: Send> EnumeratedParChunksMut<'_, T> {
    /// Runs `op` on every `(index, chunk)` across the worker pool.
    pub fn for_each<F>(self, op: F)
    where
        F: Fn((usize, &mut [T])) + Send + Sync,
    {
        let chunk_size = self.inner.chunk_size.max(1);
        let chunks: Vec<(usize, &mut [T])> =
            self.inner.slice.chunks_mut(chunk_size).enumerate().collect();
        let n_workers = workers();
        if n_workers <= 1 || chunks.len() <= 1 {
            for item in chunks {
                op(item);
            }
            return;
        }
        let per = chunks.len().div_ceil(n_workers);
        let mut bands: Vec<Vec<(usize, &mut [T])>> = Vec::new();
        let mut it = chunks.into_iter();
        loop {
            let band: Vec<_> = it.by_ref().take(per).collect();
            if band.is_empty() {
                break;
            }
            bands.push(band);
        }
        let op = &op;
        std::thread::scope(|scope| {
            for band in bands {
                scope.spawn(move || {
                    for item in band {
                        op(item);
                    }
                });
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn enumerated_chunks_cover_all_elements() {
        let mut v = vec![0u32; 1000];
        v.par_chunks_mut(7).enumerate().for_each(|(i, chunk)| {
            for x in chunk.iter_mut() {
                *x = i as u32 + 1;
            }
        });
        assert!(v.iter().all(|&x| x > 0));
        assert_eq!(v[0], 1);
        assert_eq!(v[999], 1000usize.div_ceil(7) as u32);
    }

    #[test]
    fn plain_for_each_works() {
        let mut v = vec![1i64; 64];
        v.par_chunks_mut(8).for_each(|chunk| {
            for x in chunk.iter_mut() {
                *x *= 2;
            }
        });
        assert!(v.iter().all(|&x| x == 2));
    }
}
