//! Minimal `bytes`-compatible shim for the offline build: `Bytes` /
//! `BytesMut` buffers with the little-endian get/put surface the
//! transport layer frames its messages with.

/// An immutable byte buffer with a read cursor.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes { data: data.to_vec(), pos: 0 }
    }

    /// Remaining (unread) bytes as a vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data[self.pos..].to_vec()
    }

    /// Remaining (unread) length.
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Whether no unread bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data, pos: 0 }
    }
}

/// A growable byte buffer for frame assembly.
#[derive(Debug, Clone, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { data: Vec::with_capacity(cap) }
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Freezes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data, pos: 0 }
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Read cursor over a byte buffer (little-endian accessors).
pub trait Buf {
    /// Whether unread bytes remain.
    fn has_remaining(&self) -> bool;

    /// Reads the next `n` bytes, advancing the cursor.
    fn take_bytes(&mut self, n: usize) -> &[u8];

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.take_bytes(8).try_into().expect("8 bytes"))
    }

    /// Reads a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_le_bytes(self.take_bytes(4).try_into().expect("4 bytes"))
    }
}

impl Buf for Bytes {
    fn has_remaining(&self) -> bool {
        !self.is_empty()
    }

    fn take_bytes(&mut self, n: usize) -> &[u8] {
        let start = self.pos;
        assert!(start + n <= self.data.len(), "buffer underrun");
        self.pos += n;
        &self.data[start..start + n]
    }
}

/// Write cursor over a growable buffer (little-endian accessors).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::{Buf, BufMut, Bytes, BytesMut};

    #[test]
    fn u64_and_f32_round_trip() {
        let mut w = BytesMut::with_capacity(12);
        w.put_u64_le(0xDEAD_BEEF_0102_0304);
        w.put_f32_le(-1.5);
        let mut r = Bytes::from(w.to_vec());
        assert_eq!(r.get_u64_le(), 0xDEAD_BEEF_0102_0304);
        assert_eq!(r.get_f32_le(), -1.5);
        assert!(!r.has_remaining());
    }

    #[test]
    fn copy_from_slice_preserves_content() {
        let b = Bytes::copy_from_slice(&[1, 2, 3]);
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
        assert_eq!(b.len(), 3);
    }
}
