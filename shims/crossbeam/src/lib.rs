//! Minimal `crossbeam`-compatible shim for the offline build.
//!
//! Only the unbounded MPMC channel surface the transport crate uses is
//! provided, implemented over `std::sync::mpsc` with a mutex around the
//! receiver so the handle is `Sync` like crossbeam's.

/// Channel types, mirroring `crossbeam::channel`.
pub mod channel {
    use std::sync::mpsc;
    use std::sync::{Arc, Mutex};

    /// Sending half of an unbounded channel.
    #[derive(Debug, Clone)]
    pub struct Sender<T>(mpsc::Sender<T>);

    /// Receiving half of an unbounded channel.
    #[derive(Debug)]
    pub struct Receiver<T>(Arc<Mutex<mpsc::Receiver<T>>>);

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver(Arc::clone(&self.0))
        }
    }

    /// Error returned when the peer end has disconnected during a send.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned when the peer end has disconnected during a recv.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl<T> Sender<T> {
        /// Sends a value; fails only when every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value).map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a value arrives; fails when every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let guard = self.0.lock().expect("receiver mutex poisoned");
            guard.recv().map_err(|_| RecvError)
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(Arc::new(Mutex::new(rx))))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvError};

    #[test]
    fn round_trip_across_threads() {
        let (tx, rx) = unbounded();
        let t = std::thread::spawn(move || rx.recv().unwrap());
        tx.send(41u64).unwrap();
        assert_eq!(t.join().unwrap(), 41);
    }

    #[test]
    fn disconnection_is_reported() {
        let (tx, rx) = unbounded::<u8>();
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
        let (tx2, rx2) = unbounded::<u8>();
        drop(rx2);
        assert!(tx2.send(1).is_err());
    }
}
