//! Minimal `proptest`-compatible shim for the offline build.
//!
//! Implements the strategy surface the workspace's property tests use —
//! numeric range strategies, `any`, `collection::vec`, `array::uniform4`
//! and the `proptest!` / `prop_assert*` macros — by sampling random
//! cases deterministically (seeded from the test name). **No shrinking**:
//! a failing case panics with its inputs via the standard assert
//! message instead of being minimised.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Run-count configuration, mirroring `proptest::test_runner::ProptestConfig`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to execute per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; the shim halves that to keep the
        // heavier crypto property tests inside the debug-profile budget.
        ProptestConfig { cases: 128 }
    }
}

/// A samplable input distribution.
pub trait Strategy {
    /// The value type this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut StdRng) -> $t {
                let span = (self.end as i128) - (self.start as i128);
                assert!(span > 0, "empty strategy range");
                let off = (rng.next_u64() as i128).rem_euclid(span);
                (self.start as i128 + off) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut StdRng) -> $t {
                let span = (*self.end() as i128) - (*self.start() as i128) + 1;
                let off = (rng.next_u64() as i128).rem_euclid(span);
                (*self.start() as i128 + off) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, usize);

impl Strategy for std::ops::Range<u64> {
    type Value = u64;

    fn sample(&self, rng: &mut StdRng) -> u64 {
        let span = self.end - self.start;
        assert!(span > 0, "empty strategy range");
        self.start + rng.next_u64() % span
    }
}

macro_rules! impl_float_range_strategy {
    ($($t:ty, $bits:expr, $mant:expr);*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut StdRng) -> $t {
                let unit = (rng.next_u64() >> (64 - $mant)) as $t
                    / (1u64 << $mant) as $t;
                self.start + (self.end - self.start) * unit
            }
        }
    )*};
}

impl_float_range_strategy!(f32, 32, 24; f64, 64, 53);

/// Types with a whole-domain ("arbitrary") distribution.
pub trait ArbitraryValue: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl ArbitraryValue for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Whole-domain strategy handle returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

/// The `proptest::prelude::any` strategy constructor.
pub fn any<T: ArbitraryValue>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{StdRng, Strategy};

    /// Strategy for vectors with lengths drawn from `sizes`.
    pub struct VecStrategy<S> {
        element: S,
        sizes: std::ops::Range<usize>,
    }

    /// Builds a vector strategy from an element strategy and a length
    /// range.
    pub fn vec<S: Strategy>(element: S, sizes: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, sizes }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = self.sizes.sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Array strategies, mirroring `proptest::array`.
pub mod array {
    use super::{StdRng, Strategy};

    /// Strategy producing `[T; 4]` from one element strategy.
    pub struct Uniform4<S>(S);

    /// Builds the `[T; 4]` strategy.
    pub fn uniform4<S: Strategy>(element: S) -> Uniform4<S> {
        Uniform4(element)
    }

    impl<S: Strategy> Strategy for Uniform4<S> {
        type Value = [S::Value; 4];

        fn sample(&self, rng: &mut StdRng) -> [S::Value; 4] {
            [self.0.sample(rng), self.0.sample(rng), self.0.sample(rng), self.0.sample(rng)]
        }
    }
}

/// Seeds the case generator deterministically from the test path.
pub fn rng_for(test_name: &str, case: u32) -> StdRng {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    StdRng::seed_from_u64(h ^ ((case as u64) << 32))
}

/// Everything the property tests import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, proptest, ProptestConfig, Strategy,
    };
}

/// Assertion inside a property body (no shrinking: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Case precondition: skips to the next sampled case when `cond` fails
/// (the shim's bodies are inlined in the case loop, so `continue` is the
/// rejection).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

/// Declares property tests: each function runs `config.cases` sampled
/// cases as one `#[test]`.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        config = ($cfg:expr);
        $(
            $(#[$meta:meta])+
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])+
            fn $name() {
                let __prop_config = $cfg;
                for __prop_case in 0..__prop_config.cases {
                    let mut __prop_rng = $crate::rng_for(
                        concat!(module_path!(), "::", stringify!($name)),
                        __prop_case,
                    );
                    $(
                        let $arg = $crate::Strategy::sample(&($strat), &mut __prop_rng);
                    )+
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_are_respected(x in -5.0f32..5.0, n in 1usize..10, s in any::<u64>()) {
            prop_assert!((-5.0..5.0).contains(&x));
            prop_assert!((1..10).contains(&n));
            let _ = s;
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]
        #[test]
        fn config_is_applied(v in crate::collection::vec(0u64..9, 1..4)) {
            prop_assert!(!v.is_empty() && v.len() < 4);
            prop_assert!(v.iter().all(|&x| x < 9));
        }
    }

    #[test]
    fn uniform4_fills_array() {
        let mut rng = crate::rng_for("uniform4", 0);
        let arr = crate::Strategy::sample(&crate::array::uniform4(-8i16..8), &mut rng);
        assert_eq!(arr.len(), 4);
        assert!(arr.iter().all(|&v| (-8..8).contains(&v)));
    }
}
