//! Backend-parameterized conformance suite: every behavioral guarantee
//! of the `Poller` API, executed against each backend this build can
//! construct ([`Backend::available`] — epoll + peek on Linux, peek
//! elsewhere). A failure names the offending backend in its panic
//! message.

use polling::{Backend, Event, Poller};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};

/// Runs `check` once per available backend.
fn for_each_backend(check: impl Fn(&Poller, Backend)) {
    for &backend in Backend::available() {
        let poller = Poller::with_backend(backend)
            .unwrap_or_else(|e| panic!("[{}] construction failed: {e}", backend.name()));
        assert_eq!(poller.backend(), backend);
        check(&poller, backend);
    }
}

/// A connected (client, server-side) socket pair.
fn socket_pair(listener: &TcpListener) -> (TcpStream, TcpStream) {
    let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
    let (server, _) = listener.accept().unwrap();
    (client, server)
}

fn wait_collect(poller: &Poller, timeout: Duration) -> (Vec<Event>, polling::WaitResult) {
    let mut events = Vec::new();
    let result = poller.wait(&mut events, Some(timeout)).unwrap();
    (events, result)
}

/// Waits until `key` is reported readable, panicking after `timeout`.
fn wait_for_key(poller: &Poller, key: usize, timeout: Duration, what: &str) -> Vec<Event> {
    let deadline = Instant::now() + timeout;
    loop {
        let remaining = deadline.saturating_duration_since(Instant::now());
        assert!(!remaining.is_zero(), "timed out waiting for {what} (key {key})");
        let (events, _) = wait_collect(poller, remaining);
        if events.iter().any(|e| e.key == key) {
            return events;
        }
    }
}

#[test]
fn idle_wait_times_out_empty() {
    for_each_backend(|poller, backend| {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let (_client, server) = socket_pair(&listener);
        poller.add(&server, 7).unwrap();
        let start = Instant::now();
        let (events, result) = wait_collect(poller, Duration::from_millis(30));
        assert!(events.is_empty(), "[{}] phantom events: {events:?}", backend.name());
        assert!(result.timed_out(), "[{}] expected timeout, got {result:?}", backend.name());
        assert!(start.elapsed() >= Duration::from_millis(25), "[{}] woke early", backend.name());
    });
}

#[test]
fn buffered_bytes_and_eof_are_readable() {
    for_each_backend(|poller, backend| {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let (mut client, server) = socket_pair(&listener);
        poller.add(&server, 3).unwrap();
        client.write_all(b"ping").unwrap();
        let events = wait_for_key(poller, 3, Duration::from_secs(5), "buffered bytes");
        assert!(events.iter().any(|e| e.key == 3 && e.readable), "[{}]", backend.name());

        // Level-triggered: unconsumed bytes resurface on the next wait.
        let again = wait_for_key(poller, 3, Duration::from_secs(5), "level-triggered resurface");
        assert!(again.iter().any(|e| e.key == 3), "[{}]", backend.name());

        // Drain, then close the peer: EOF must also report readable.
        let mut server = server;
        server.set_nonblocking(false).unwrap();
        let mut buf = [0u8; 4];
        server.read_exact(&mut buf).unwrap();
        drop(client);
        let events = wait_for_key(poller, 3, Duration::from_secs(5), "EOF readability");
        assert!(events.iter().any(|e| e.key == 3 && e.readable), "[{}]", backend.name());
    });
}

#[test]
fn notify_wakes_a_blocked_wait_and_is_sticky() {
    for_each_backend(|poller, backend| {
        // Sticky: notify with no waiter short-circuits the next wait.
        poller.notify();
        let start = Instant::now();
        let (events, result) = wait_collect(poller, Duration::from_secs(10));
        assert!(result.notified, "[{}] expected notified, got {result:?}", backend.name());
        assert!(events.is_empty(), "[{}]", backend.name());
        assert!(start.elapsed() < Duration::from_secs(5), "[{}] notify not sticky", backend.name());

        // Consumed: the next wait is a plain timeout again.
        let (_, result) = wait_collect(poller, Duration::from_millis(10));
        assert!(result.timed_out(), "[{}] notify leaked: {result:?}", backend.name());

        // Cross-thread: a concurrent notify interrupts a long wait.
        std::thread::scope(|scope| {
            scope.spawn(|| {
                std::thread::sleep(Duration::from_millis(50));
                poller.notify();
            });
            let start = Instant::now();
            let (_, result) = wait_collect(poller, Duration::from_secs(30));
            assert!(result.notified, "[{}] got {result:?}", backend.name());
            assert!(start.elapsed() < Duration::from_secs(10), "[{}]", backend.name());
        });
    });
}

#[test]
fn duplicate_keys_rejected_and_delete_is_idempotent() {
    for_each_backend(|poller, backend| {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let (_c1, s1) = socket_pair(&listener);
        let (_c2, s2) = socket_pair(&listener);
        poller.add(&s1, 1).unwrap();
        let err = poller.add(&s2, 1).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::AlreadyExists, "[{}]", backend.name());
        assert_eq!(poller.len(), 1, "[{}]", backend.name());
        poller.delete(1);
        poller.delete(1); // idempotent
        assert!(poller.is_empty(), "[{}]", backend.name());
        // The key is reusable after deletion.
        poller.add(&s2, 1).unwrap();
        poller.delete(1);
    });
}

#[test]
fn deleted_source_stops_reporting() {
    for_each_backend(|poller, backend| {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let (mut client, server) = socket_pair(&listener);
        poller.add(&server, 9).unwrap();
        client.write_all(b"x").unwrap();
        wait_for_key(poller, 9, Duration::from_secs(5), "pre-delete readability");
        poller.delete(9);
        let (events, result) = wait_collect(poller, Duration::from_millis(30));
        assert!(
            events.iter().all(|e| e.key != 9),
            "[{}] deleted key still reported: {events:?}",
            backend.name()
        );
        assert!(result.timed_out(), "[{}]", backend.name());
    });
}

#[test]
fn listener_registration_surfaces_pending_accepts() {
    for_each_backend(|poller, backend| {
        const LISTENER_KEY: usize = 1000;
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        poller.add_listener(&listener, LISTENER_KEY).unwrap();
        let _client = TcpStream::connect(addr).unwrap();
        let events = wait_for_key(poller, LISTENER_KEY, Duration::from_secs(5), "pending accept");
        assert!(events.iter().any(|e| e.key == LISTENER_KEY && e.readable), "[{}]", backend.name());
        // Registration switched the listener nonblocking; accept works.
        listener.accept().unwrap();
        poller.delete(LISTENER_KEY);
    });
}

#[test]
fn ready_stream_reported_alongside_parked_peers() {
    for_each_backend(|poller, backend| {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut pairs = Vec::new();
        for key in 0..32usize {
            let (client, server) = socket_pair(&listener);
            poller.add(&server, key).unwrap();
            pairs.push((client, server));
        }
        // Exactly one of the 32 becomes ready.
        pairs[17].0.write_all(b"!").unwrap();
        let events = wait_for_key(poller, 17, Duration::from_secs(5), "the one ready stream");
        assert!(
            events.iter().all(|e| e.key == 17),
            "[{}] phantom readiness among parked peers: {events:?}",
            backend.name()
        );
        for key in 0..32usize {
            poller.delete(key);
        }
    });
}

#[test]
fn add_delete_notify_churn_stress() {
    // Hammer registration/deregistration from one thread and notify
    // from another while a third waits — exercising the mutex + kernel
    // table paths for lost wakeups, phantom keys, or deadlock.
    for_each_backend(|poller, backend| {
        const ROUNDS: usize = 40;
        const PER_ROUND: usize = 16;
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        std::thread::scope(|scope| {
            let churn = scope.spawn(|| {
                for round in 0..ROUNDS {
                    let mut pairs = Vec::new();
                    for slot in 0..PER_ROUND {
                        let key = round * PER_ROUND + slot;
                        let (mut client, server) = socket_pair(&listener);
                        poller.add(&server, key).unwrap();
                        if slot % 3 == 0 {
                            client.write_all(b"c").unwrap();
                        }
                        pairs.push((client, server, key));
                    }
                    for (_, _, key) in &pairs {
                        poller.delete(*key);
                    }
                }
            });
            let notifier = scope.spawn(|| {
                for _ in 0..200 {
                    poller.notify();
                    std::thread::sleep(Duration::from_micros(200));
                }
            });
            let deadline = Instant::now() + Duration::from_secs(60);
            while !(churn.is_finished() && notifier.is_finished()) {
                assert!(Instant::now() < deadline, "[{}] churn wedged", backend.name());
                let mut events = Vec::new();
                // Events for just-deleted keys are permitted (the wait
                // races deletion); errors and deadlock are not.
                poller
                    .wait(&mut events, Some(Duration::from_millis(5)))
                    .unwrap_or_else(|e| panic!("[{}] wait failed: {e}", backend.name()));
            }
            churn.join().unwrap();
            notifier.join().unwrap();
        });
        assert!(poller.is_empty(), "[{}] leaked registrations", backend.name());
    });
}
