//! The portable peek-scan backend: readiness derived from
//! [`TcpStream::peek`] on nonblocking handles, standing in wherever the
//! kernel multiplexer ([`crate::sys`]) is unavailable — non-Linux
//! builds, and Linux runs forced onto it with `POLLING_FORCE_PEEK=1`.
//!
//! `std` exposes no fd-multiplexing syscall, so this backend derives
//! readiness by scanning every registered source per tick: a peek that
//! returns `Ok(n)` means buffered bytes (readable), `Ok(0)` means EOF
//! (readable — the owner must observe the close), `WouldBlock` means
//! idle, and any other error is surfaced as readable so the owner reads
//! the failure instead of leaking the connection. O(sources) syscalls
//! per tick rather than O(ready) like epoll — same API shape, honest
//! semantics, no platform code.
//!
//! **Listener sources are assumed-ready.** A [`std::net::TcpListener`]
//! cannot be peeked, so this backend reports a registered listener as
//! readable on every wait that returns for any other reason (client
//! events or timeout expiry) — a conservative over-approximation the
//! level-triggered contract permits (DESIGN.md §11): the owner's
//! nonblocking `accept` confirms or refutes it for one extra syscall.
//! The consequence is that accept latency on this backend is bounded by
//! the caller's wait timeout, which is why the reactor keeps a short
//! safety tick when it detects this backend.

use crate::{Event, WaitResult};
use std::collections::BTreeMap;
use std::io;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// How long one scan pass sleeps before re-peeking every source.
const TICK: Duration = Duration::from_millis(1);

/// One registered source: a peekable stream probe, or a listener slot
/// (readiness unobservable — assumed ready; see the module docs).
enum Source {
    Stream(TcpStream),
    Listener,
}

/// The peek-scan poller. One thread calls [`PeekPoller::wait`] in a
/// loop; any thread may add/delete sources or notify the waiter.
pub(crate) struct PeekPoller {
    sources: Mutex<BTreeMap<usize, Source>>,
    notified: AtomicBool,
}

impl PeekPoller {
    pub(crate) fn new() -> io::Result<PeekPoller> {
        Ok(PeekPoller { sources: Mutex::new(BTreeMap::new()), notified: AtomicBool::new(false) })
    }

    fn insert(&self, key: usize, source: Source) -> io::Result<()> {
        let mut sources = self.sources.lock().expect("poller mutex poisoned");
        if sources.contains_key(&key) {
            return Err(io::Error::new(io::ErrorKind::AlreadyExists, format!("key {key}")));
        }
        sources.insert(key, source);
        Ok(())
    }

    pub(crate) fn add(&self, stream: &TcpStream, key: usize) -> io::Result<()> {
        let probe = stream.try_clone()?;
        probe.set_nonblocking(true)?;
        self.insert(key, Source::Stream(probe))
    }

    pub(crate) fn add_listener(
        &self,
        listener: &std::net::TcpListener,
        key: usize,
    ) -> io::Result<()> {
        listener.set_nonblocking(true)?;
        self.insert(key, Source::Listener)
    }

    pub(crate) fn delete(&self, key: usize) {
        self.sources.lock().expect("poller mutex poisoned").remove(&key);
    }

    pub(crate) fn len(&self) -> usize {
        self.sources.lock().expect("poller mutex poisoned").len()
    }

    pub(crate) fn wait(
        &self,
        events: &mut Vec<Event>,
        timeout: Option<Duration>,
    ) -> io::Result<WaitResult> {
        let deadline = timeout.map(|t| Instant::now() + t);
        let mut buf = [0u8; 1];
        loop {
            if self.notified.swap(false, Ordering::SeqCst) {
                return Ok(WaitResult { added: 0, notified: true });
            }
            let before = events.len();
            let mut listeners: Vec<usize> = Vec::new();
            {
                let sources = self.sources.lock().expect("poller mutex poisoned");
                for (&key, source) in sources.iter() {
                    let probe = match source {
                        Source::Stream(probe) => probe,
                        Source::Listener => {
                            listeners.push(key);
                            continue;
                        }
                    };
                    let ready = match probe.peek(&mut buf) {
                        Ok(_) => true, // bytes buffered, or Ok(0) = EOF
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => false,
                        Err(_) => true, // surface the error to the owner
                    };
                    if ready {
                        events.push(Event::readable(key));
                    }
                }
            }
            let stream_events = events.len() - before;
            let expired = deadline.is_some_and(|d| Instant::now() >= d);
            if stream_events > 0 || expired {
                // Listener readiness is unobservable here: report the
                // listener whenever we return anyway, so accepts are
                // serviced both under load and on the timeout tick. An
                // expiry with no listener returns empty — a plain
                // timeout.
                events.extend(listeners.iter().map(|&k| Event::readable(k)));
                return Ok(WaitResult { added: events.len() - before, notified: false });
            }
            let nap = match deadline {
                Some(d) => TICK.min(d.saturating_duration_since(Instant::now())),
                None => TICK,
            };
            std::thread::sleep(nap);
        }
    }

    pub(crate) fn notify(&self) {
        self.notified.store(true, Ordering::SeqCst);
    }
}
