//! Platform backends built on raw kernel interfaces. This is the one
//! subtree of the crate where `unsafe` is permitted: the crate-level
//! `#![deny(unsafe_code)]` is relaxed here with a scoped allow, and
//! every unsafe block wraps exactly one libc call whose contract is
//! stated at the call site.

#[allow(unsafe_code)]
pub(crate) mod epoll;
