//! The Linux epoll backend: one `epoll_wait` multiplexes every
//! registered socket, the listener, and an `eventfd`-based notify —
//! O(ready) wakeups instead of the peek backend's O(sources) scan.
//!
//! Bindings are direct `extern "C"` declarations against the libc
//! symbols `std` already links (`epoll_create1`, `epoll_ctl`,
//! `epoll_wait`, `eventfd`, `read`, `write`, `close`) — no new crate
//! dependency. All registrations are **level-triggered** (`EPOLLIN |
//! EPOLLRDHUP`, no `EPOLLET`), matching the peek backend's contract: a
//! source that stays readable is reported again on every wait.
//!
//! **Notify** is an [`eventfd`] registered in the same epoll set under
//! a reserved data word: [`Poller::notify`](crate::Poller::notify)
//! writes one counter increment (O(1), signal-safe, no tick latency)
//! and the waiter drains it when the event surfaces. The eventfd
//! counter persists until read, which gives the exact "sticky notify"
//! semantics the peek backend models with an `AtomicBool`: a notify
//! with no waiter makes the next wait return immediately.
//!
//! **Why registering a cloned handle is sound.** [`TcpStream::try_clone`]
//! is `dup(2)`: the clone shares the original's *file description*, and
//! epoll readiness is a property of the description, not the
//! descriptor — events fire no matter which fd the owner reads from.
//! The clone also keeps the description (and our registration) alive
//! independent of the caller's handle, and gives `delete` a stable fd
//! for `EPOLL_CTL_DEL`.

use crate::{Event, WaitResult};
use std::collections::BTreeMap;
use std::io;
use std::net::{TcpListener, TcpStream};
use std::os::fd::{AsRawFd, RawFd};
use std::sync::Mutex;
use std::time::{Duration, Instant};

mod ffi {
    use std::os::raw::{c_int, c_void};

    /// Mirror of libc's `struct epoll_event`. On x86/x86_64 the kernel
    /// ABI packs it to 12 bytes; other architectures use natural
    /// alignment.
    #[derive(Clone, Copy)]
    #[cfg_attr(any(target_arch = "x86", target_arch = "x86_64"), repr(C, packed))]
    #[cfg_attr(not(any(target_arch = "x86", target_arch = "x86_64")), repr(C))]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLRDHUP: u32 = 0x2000;
    pub const EPOLL_CTL_ADD: c_int = 1;
    pub const EPOLL_CTL_DEL: c_int = 2;
    /// `O_CLOEXEC`, shared by `EPOLL_CLOEXEC` and `EFD_CLOEXEC`.
    pub const CLOEXEC: c_int = 0o2000000;
    /// `EFD_NONBLOCK` (`O_NONBLOCK`): a notify-storm drain never blocks.
    pub const EFD_NONBLOCK: c_int = 0o4000;

    extern "C" {
        pub fn epoll_create1(flags: c_int) -> c_int;
        pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        pub fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        pub fn eventfd(initval: u32, flags: c_int) -> c_int;
        pub fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        pub fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
        pub fn close(fd: c_int) -> c_int;
    }
}

/// The epoll data word reserved for the notify eventfd. Collides with
/// key `usize::MAX`, which [`crate::Poller`] rejects at registration.
const NOTIFY_DATA: u64 = u64::MAX;

/// Events drained per `epoll_wait` call. Ready sources beyond the batch
/// are not lost — level-triggered registrations resurface them on the
/// next wait.
const WAIT_BATCH: usize = 256;

/// The handle a registration keeps alive for the lifetime of its epoll
/// entry (dropping it closes the dup'd fd *after* `EPOLL_CTL_DEL`).
enum Keepalive {
    Stream(TcpStream),
    Listener(TcpListener),
}

impl Keepalive {
    fn fd(&self) -> RawFd {
        match self {
            Keepalive::Stream(s) => s.as_raw_fd(),
            Keepalive::Listener(l) => l.as_raw_fd(),
        }
    }
}

/// The epoll-backed poller.
pub(crate) struct EpollPoller {
    epfd: RawFd,
    notify_fd: RawFd,
    sources: Mutex<BTreeMap<usize, Keepalive>>,
}

// SAFETY-ADJACENT (no unsafe involved): raw fds are plain integers;
// all mutation of the key map is behind the Mutex, and the kernel
// serializes epoll_ctl/epoll_wait internally.
//
// (Send + Sync are auto-derived: RawFd is i32.)

fn cvt(ret: i32) -> io::Result<i32> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

impl EpollPoller {
    pub(crate) fn new() -> io::Result<EpollPoller> {
        // SAFETY: epoll_create1 takes no pointers; any flag value is a
        // defined call (invalid ones return EINVAL, surfaced as Err).
        let epfd = cvt(unsafe { ffi::epoll_create1(ffi::CLOEXEC) })?;
        // SAFETY: as above — eventfd takes an initial counter and flags.
        let notify_fd = match cvt(unsafe { ffi::eventfd(0, ffi::CLOEXEC | ffi::EFD_NONBLOCK) }) {
            Ok(fd) => fd,
            Err(e) => {
                // SAFETY: epfd was returned by epoll_create1 above and
                // has not been closed; close consumes it exactly once.
                let _ = unsafe { ffi::close(epfd) };
                return Err(e);
            }
        };
        let poller = EpollPoller { epfd, notify_fd, sources: Mutex::new(BTreeMap::new()) };
        poller.ctl_add(notify_fd, NOTIFY_DATA)?;
        Ok(poller)
    }

    fn ctl_add(&self, fd: RawFd, data: u64) -> io::Result<()> {
        let mut ev = ffi::EpollEvent { events: ffi::EPOLLIN | ffi::EPOLLRDHUP, data };
        // SAFETY: `ev` is a live, writable epoll_event for the duration
        // of the call; epfd and fd are open descriptors we own.
        cvt(unsafe { ffi::epoll_ctl(self.epfd, ffi::EPOLL_CTL_ADD, fd, &mut ev) })?;
        Ok(())
    }

    fn insert(&self, key: usize, keepalive: Keepalive) -> io::Result<()> {
        let mut sources = self.sources.lock().expect("poller mutex poisoned");
        if sources.contains_key(&key) {
            return Err(io::Error::new(io::ErrorKind::AlreadyExists, format!("key {key}")));
        }
        self.ctl_add(keepalive.fd(), key as u64)?;
        sources.insert(key, keepalive);
        Ok(())
    }

    pub(crate) fn add(&self, stream: &TcpStream, key: usize) -> io::Result<()> {
        let clone = stream.try_clone()?;
        // Same contract as the peek backend: registration flips the
        // shared file description to nonblocking.
        clone.set_nonblocking(true)?;
        self.insert(key, Keepalive::Stream(clone))
    }

    pub(crate) fn add_listener(&self, listener: &TcpListener, key: usize) -> io::Result<()> {
        let clone = listener.try_clone()?;
        clone.set_nonblocking(true)?;
        self.insert(key, Keepalive::Listener(clone))
    }

    pub(crate) fn delete(&self, key: usize) {
        let Some(keepalive) = self.sources.lock().expect("poller mutex poisoned").remove(&key)
        else {
            return;
        };
        let mut ev = ffi::EpollEvent { events: 0, data: 0 };
        // SAFETY: our dup'd fd is still open (the keepalive is dropped
        // below); pre-2.6.9 kernels demand a non-null event pointer for
        // DEL, which `ev` provides. Failure is unreachable for a live
        // registration and harmless otherwise — the fd close below
        // drops the registration anyway.
        let _ = unsafe { ffi::epoll_ctl(self.epfd, ffi::EPOLL_CTL_DEL, keepalive.fd(), &mut ev) };
        drop(keepalive);
    }

    pub(crate) fn len(&self) -> usize {
        self.sources.lock().expect("poller mutex poisoned").len()
    }

    pub(crate) fn wait(
        &self,
        events: &mut Vec<Event>,
        timeout: Option<Duration>,
    ) -> io::Result<WaitResult> {
        let deadline = timeout.map(|t| Instant::now() + t);
        let mut buf = [ffi::EpollEvent { events: 0, data: 0 }; WAIT_BATCH];
        loop {
            // Round sub-millisecond remainders *up*: truncation would
            // turn a 100 µs batch-window deadline into a zero-timeout
            // spin loop.
            let timeout_ms: i32 = match deadline {
                None => -1,
                Some(d) => d
                    .saturating_duration_since(Instant::now())
                    .as_micros()
                    .div_ceil(1000)
                    .min(i32::MAX as u128) as i32,
            };
            // SAFETY: `buf` is a live array of WAIT_BATCH epoll_events
            // and maxevents matches its length; epfd is our open epoll
            // instance. The kernel writes at most `n` entries.
            let n = unsafe {
                ffi::epoll_wait(self.epfd, buf.as_mut_ptr(), WAIT_BATCH as i32, timeout_ms)
            };
            if n < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    continue; // EINTR: recompute the timeout and retry
                }
                return Err(err);
            }
            let mut added = 0usize;
            let mut notified = false;
            for ev in buf.iter().take(n as usize) {
                // Copy out of the (possibly packed) struct by value.
                let data = { ev.data };
                if data == NOTIFY_DATA {
                    self.drain_notify();
                    notified = true;
                } else {
                    events.push(Event::readable(data as usize));
                    added += 1;
                }
            }
            if added > 0 || notified || n == 0 {
                return Ok(WaitResult { added, notified });
            }
            // n > 0 but every event was swallowed (cannot happen today:
            // every registration carries either NOTIFY_DATA or a key).
            // Loop defensively rather than report a phantom timeout.
        }
    }

    fn drain_notify(&self) {
        let mut counter = 0u64;
        // SAFETY: notify_fd is our open eventfd and the buffer is 8
        // writable bytes, the exact read size eventfd requires. The fd
        // is nonblocking, so a racing drain returns EAGAIN harmlessly.
        let _ = unsafe {
            ffi::read(self.notify_fd, (&mut counter as *mut u64).cast(), size_of::<u64>())
        };
    }

    pub(crate) fn notify(&self) {
        let one = 1u64;
        // SAFETY: notify_fd is our open eventfd and the buffer is 8
        // readable bytes. A full counter (u64::MAX - 1 pending notifies)
        // would return EAGAIN — the pending notify it reports is
        // already set, so dropping the error keeps the semantics.
        let _ =
            unsafe { ffi::write(self.notify_fd, (&one as *const u64).cast(), size_of::<u64>()) };
    }
}

impl Drop for EpollPoller {
    fn drop(&mut self) {
        // SAFETY: both fds were created in `new` and are closed exactly
        // once, here; the keepalive map (dup'd source fds) drops itself.
        unsafe {
            let _ = ffi::close(self.notify_fd);
            let _ = ffi::close(self.epfd);
        }
    }
}
