//! Minimal `polling`-compatible shim for the offline build: socket
//! readiness over plain `std`, standing in for the real epoll/kqueue
//! wrapper the reactor would use online (see `shims/README.md` for the
//! swap-back recipe).
//!
//! `std` exposes no fd-multiplexing syscall, so this shim derives
//! readiness from [`TcpStream::peek`] on nonblocking handles: a peek
//! that returns `Ok(n)` means buffered bytes (readable), `Ok(0)` means
//! EOF (readable — the owner must observe the close), `WouldBlock`
//! means idle, and any other error is surfaced as readable so the owner
//! reads the failure instead of leaking the connection. [`Poller::wait`]
//! scans all registered sources in a short-tick loop — O(sources) per
//! tick rather than O(ready) like real epoll, which is exactly the
//! trade an offline stand-in may make: same API shape, honest
//! semantics, no platform code.
//!
//! Registration puts the socket into nonblocking mode (the flag lives
//! on the shared file description, so the caller's handle is affected
//! too); a worker that takes the connection over for blocking protocol
//! I/O must switch it back with `set_nonblocking(false)`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::io;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// How long one scan pass sleeps before re-peeking every source.
const TICK: Duration = Duration::from_millis(1);

/// A readiness event for one registered source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// The key the source was registered under.
    pub key: usize,
    /// Readable: buffered bytes, EOF, or a socket error to collect.
    pub readable: bool,
    /// Writability is not modeled by the peek probe; always `false`.
    pub writable: bool,
}

impl Event {
    /// A readable-interest event (parity with the real crate's API).
    pub fn readable(key: usize) -> Event {
        Event { key, readable: true, writable: false }
    }
}

struct Source {
    probe: TcpStream,
}

/// Readiness poller over registered [`TcpStream`]s.
///
/// One thread calls [`Poller::wait`] in a loop; any thread may
/// [`Poller::add`]/[`Poller::delete`] sources or [`Poller::notify`] the
/// waiter out of its sleep.
pub struct Poller {
    sources: Mutex<BTreeMap<usize, Source>>,
    notified: AtomicBool,
}

impl std::fmt::Debug for Poller {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let sources = self.sources.lock().expect("poller mutex poisoned");
        f.debug_struct("Poller").field("sources", &sources.len()).finish()
    }
}

impl Default for Poller {
    fn default() -> Self {
        Self::new().expect("poller construction is infallible in the shim")
    }
}

impl Poller {
    /// Creates an empty poller. (Fallible to match the real crate,
    /// where this allocates an epoll/kqueue fd; the shim cannot fail.)
    pub fn new() -> io::Result<Poller> {
        Ok(Poller { sources: Mutex::new(BTreeMap::new()), notified: AtomicBool::new(false) })
    }

    /// Registers `stream` for readable interest under `key`, switching
    /// the underlying socket to nonblocking mode. The poller keeps its
    /// own cloned handle; the caller keeps ownership of `stream`.
    ///
    /// # Errors
    ///
    /// Propagates `try_clone`/`set_nonblocking` failures; rejects a key
    /// that is already registered.
    pub fn add(&self, stream: &TcpStream, key: usize) -> io::Result<()> {
        let probe = stream.try_clone()?;
        probe.set_nonblocking(true)?;
        let mut sources = self.sources.lock().expect("poller mutex poisoned");
        if sources.contains_key(&key) {
            return Err(io::Error::new(io::ErrorKind::AlreadyExists, format!("key {key}")));
        }
        sources.insert(key, Source { probe });
        Ok(())
    }

    /// Deregisters `key`. Unknown keys are a no-op (the source may have
    /// been dispatched concurrently).
    pub fn delete(&self, key: usize) {
        self.sources.lock().expect("poller mutex poisoned").remove(&key);
    }

    /// Number of registered sources.
    pub fn len(&self) -> usize {
        self.sources.lock().expect("poller mutex poisoned").len()
    }

    /// Whether no sources are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Blocks until at least one source is readable, `timeout` elapses
    /// (`None` waits forever), or [`Poller::notify`] is called; appends
    /// the ready events to `events` and returns how many were added.
    /// Level-triggered: a source that stays readable is reported again
    /// on the next call, so the owner should delete it before handing
    /// the connection off.
    ///
    /// # Errors
    ///
    /// Infallible in the shim (signature parity with the real crate).
    pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        let deadline = timeout.map(|t| Instant::now() + t);
        let mut buf = [0u8; 1];
        loop {
            if self.notified.swap(false, Ordering::SeqCst) {
                return Ok(0);
            }
            let before = events.len();
            {
                let sources = self.sources.lock().expect("poller mutex poisoned");
                for (&key, source) in sources.iter() {
                    let ready = match source.probe.peek(&mut buf) {
                        Ok(_) => true, // bytes buffered, or Ok(0) = EOF
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => false,
                        Err(_) => true, // surface the error to the owner
                    };
                    if ready {
                        events.push(Event::readable(key));
                    }
                }
            }
            let added = events.len() - before;
            if added > 0 {
                return Ok(added);
            }
            match deadline {
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        return Ok(0);
                    }
                    std::thread::sleep(TICK.min(d - now));
                }
                None => std::thread::sleep(TICK),
            }
        }
    }

    /// Wakes a concurrent [`Poller::wait`] out of its sleep (it returns
    /// with zero events). Sticky: a notify with no waiter makes the
    /// next wait return immediately.
    pub fn notify(&self) {
        self.notified.store(true, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let a = TcpStream::connect(addr).unwrap();
        let (b, _) = listener.accept().unwrap();
        (a, b)
    }

    #[test]
    fn idle_source_times_out_without_events() {
        let (_a, b) = pair();
        let poller = Poller::new().unwrap();
        poller.add(&b, 7).unwrap();
        let mut events = Vec::new();
        let n = poller.wait(&mut events, Some(Duration::from_millis(20))).unwrap();
        assert_eq!(n, 0);
        assert!(events.is_empty());
    }

    #[test]
    fn buffered_bytes_and_eof_are_both_readable() {
        let (mut a, b) = pair();
        let poller = Poller::new().unwrap();
        poller.add(&b, 1).unwrap();
        a.write_all(b"x").unwrap();
        let mut events = Vec::new();
        poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert_eq!(events, vec![Event::readable(1)]);
        // EOF (peer gone) must also wake the owner.
        let (a2, b2) = pair();
        poller.delete(1);
        poller.add(&b2, 2).unwrap();
        drop(a2);
        events.clear();
        poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert_eq!(events, vec![Event::readable(2)]);
    }

    #[test]
    fn notify_wakes_an_idle_wait() {
        let poller = std::sync::Arc::new(Poller::new().unwrap());
        let waiter = {
            let poller = std::sync::Arc::clone(&poller);
            std::thread::spawn(move || {
                let mut events = Vec::new();
                poller.wait(&mut events, Some(Duration::from_secs(30))).unwrap()
            })
        };
        std::thread::sleep(Duration::from_millis(30));
        poller.notify();
        assert_eq!(waiter.join().unwrap(), 0, "notified wait returns empty");
    }

    #[test]
    fn duplicate_keys_are_rejected_and_delete_is_idempotent() {
        let (_a, b) = pair();
        let poller = Poller::new().unwrap();
        poller.add(&b, 3).unwrap();
        assert!(poller.add(&b, 3).is_err());
        assert_eq!(poller.len(), 1);
        poller.delete(3);
        poller.delete(3);
        assert!(poller.is_empty());
    }
}
