//! Minimal `polling`-compatible readiness poller with two backends
//! behind one API:
//!
//! * **epoll** ([`Backend::Epoll`], Linux, the default there) — a real
//!   kernel multiplexer in `sys`: every socket, the listener, and an
//!   `eventfd` notify share one `epoll_wait`, so a wakeup costs
//!   O(ready) regardless of how many thousands of sources are parked;
//! * **peek** ([`Backend::Peek`], everywhere) — the portable stand-in:
//!   readiness derived from [`TcpStream::peek`] scans on a 1 ms tick,
//!   O(sources) per tick. Still the build on non-Linux targets, and
//!   selectable on Linux with `POLLING_FORCE_PEEK=1` so both backends
//!   stay testable side by side.
//!
//! Both backends satisfy the same **level-triggered contract**
//! (DESIGN.md §11): a source that stays readable is reported on every
//! wait until the owner deletes it; [`Poller::notify`] is sticky (a
//! notify with no waiter makes the next wait return immediately) and is
//! distinguishable from a timeout via [`WaitResult::notified`]; the
//! peek backend may additionally report a registered *listener* as
//! readable when it is not (readiness of a listener cannot be peeked —
//! the owner's nonblocking `accept` resolves it), which level-triggered
//! semantics permit.
//!
//! Registration puts the socket into nonblocking mode (the flag lives
//! on the shared file description, so the caller's handle is affected
//! too); a worker that takes the connection over for blocking protocol
//! I/O must switch it back with `set_nonblocking(false)`.

#![deny(unsafe_code)] // relaxed from forbid: sys/ holds the scoped allow
#![warn(missing_docs)]

mod peek;
#[cfg(target_os = "linux")]
mod sys;

use std::io;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// The key value reserved by the poller itself (the epoll backend's
/// notify word). [`Poller::add`] rejects it.
pub const RESERVED_KEY: usize = usize::MAX;

/// A readiness event for one registered source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// The key the source was registered under.
    pub key: usize,
    /// Readable: buffered bytes, EOF, a socket error to collect, or —
    /// for a listener — a pending (possibly already-gone) connection.
    pub readable: bool,
    /// Writability is not modeled; always `false`.
    pub writable: bool,
}

impl Event {
    /// A readable-interest event (parity with the real crate's API).
    pub fn readable(key: usize) -> Event {
        Event { key, readable: true, writable: false }
    }
}

/// What one [`Poller::wait`] returned, making "woke with events",
/// "woke because of [`Poller::notify`]" and "timed out" distinguishable
/// — the reactor skips accept and due-batch work on pure notifies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitResult {
    /// Readiness events appended to the caller's buffer by this wait.
    pub added: usize,
    /// Whether a notify was drained during this wait. May be true
    /// alongside `added > 0` on the epoll backend (one `epoll_wait`
    /// batch can carry both).
    pub notified: bool,
}

impl WaitResult {
    /// Whether the wait returned only because its timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.added == 0 && !self.notified
    }
}

/// Which kernel-facing implementation a [`Poller`] runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Peek-scan over nonblocking sockets: portable, O(sources)/tick.
    Peek,
    /// Linux epoll: O(ready) wakeups, real listener readiness.
    #[cfg(target_os = "linux")]
    Epoll,
}

impl Backend {
    /// Every backend this build can construct, preferred first.
    pub fn available() -> &'static [Backend] {
        #[cfg(target_os = "linux")]
        {
            &[Backend::Epoll, Backend::Peek]
        }
        #[cfg(not(target_os = "linux"))]
        {
            &[Backend::Peek]
        }
    }

    /// Stable lowercase name, used in metrics labels and logs.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Peek => "peek",
            #[cfg(target_os = "linux")]
            Backend::Epoll => "epoll",
        }
    }

    /// Whether listener readiness reported by this backend is real
    /// kernel state rather than a conservative assumption. An
    /// event-driven owner may sleep long between wakeups; a scanning
    /// backend's owner must keep its wait timeouts at the accept
    /// latency it wants.
    pub fn event_driven(self) -> bool {
        match self {
            Backend::Peek => false,
            #[cfg(target_os = "linux")]
            Backend::Epoll => true,
        }
    }
}

enum Impl {
    Peek(peek::PeekPoller),
    #[cfg(target_os = "linux")]
    Epoll(sys::epoll::EpollPoller),
}

/// Readiness poller over registered [`TcpStream`]s (and at most a
/// handful of [`TcpListener`]s).
///
/// One thread calls [`Poller::wait`] in a loop; any thread may
/// [`Poller::add`]/[`Poller::delete`] sources or [`Poller::notify`] the
/// waiter out of its sleep. Level-triggered: a source that stays
/// readable is reported again on the next call, so the owner should
/// delete it before handing the connection off.
pub struct Poller {
    imp: Impl,
    backend: Backend,
    wakeups: AtomicU64,
    events: AtomicU64,
}

impl std::fmt::Debug for Poller {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Poller")
            .field("backend", &self.backend.name())
            .field("sources", &self.len())
            .finish()
    }
}

impl Default for Poller {
    fn default() -> Self {
        Self::new().expect("default poller backend construction failed")
    }
}

impl Poller {
    /// Creates a poller on the build's preferred backend: epoll on
    /// Linux, peek elsewhere. Setting `POLLING_FORCE_PEEK=1` in the
    /// environment forces the peek backend even on Linux — the runtime
    /// escape hatch CI uses to pin backend parity end to end.
    ///
    /// # Errors
    ///
    /// Propagates backend construction failures (epoll/eventfd fd
    /// allocation; the peek backend is infallible).
    pub fn new() -> io::Result<Poller> {
        let force_peek = std::env::var("POLLING_FORCE_PEEK").is_ok_and(|v| v == "1");
        let backend = if force_peek { Backend::Peek } else { Backend::available()[0] };
        Self::with_backend(backend)
    }

    /// Creates a poller on an explicit backend — how the conformance
    /// suite and benches run both implementations side by side in one
    /// process, without racing on the environment.
    ///
    /// # Errors
    ///
    /// Propagates backend construction failures.
    pub fn with_backend(backend: Backend) -> io::Result<Poller> {
        let imp = match backend {
            Backend::Peek => Impl::Peek(peek::PeekPoller::new()?),
            #[cfg(target_os = "linux")]
            Backend::Epoll => Impl::Epoll(sys::epoll::EpollPoller::new()?),
        };
        Poller::wrap(imp, backend)
    }

    fn wrap(imp: Impl, backend: Backend) -> io::Result<Poller> {
        Ok(Poller { imp, backend, wakeups: AtomicU64::new(0), events: AtomicU64::new(0) })
    }

    /// Which backend this poller runs on.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// Registers `stream` for readable interest under `key`, switching
    /// the underlying socket to nonblocking mode. The poller keeps its
    /// own cloned handle; the caller keeps ownership of `stream`.
    ///
    /// # Errors
    ///
    /// Propagates `try_clone`/`set_nonblocking`/registration failures;
    /// rejects a key that is already registered or [`RESERVED_KEY`].
    pub fn add(&self, stream: &TcpStream, key: usize) -> io::Result<()> {
        self.check_key(key)?;
        match &self.imp {
            Impl::Peek(p) => p.add(stream, key),
            #[cfg(target_os = "linux")]
            Impl::Epoll(p) => p.add(stream, key),
        }
    }

    /// Registers `listener` for accept-readiness under `key`, switching
    /// it to nonblocking mode. On the epoll backend the event is real
    /// kernel state; on the peek backend the listener is reported
    /// *conservatively* — alongside any stream events and on every
    /// timeout expiry — because listener readiness cannot be peeked
    /// (see the [crate docs](self)).
    ///
    /// # Errors
    ///
    /// As [`Poller::add`].
    pub fn add_listener(&self, listener: &TcpListener, key: usize) -> io::Result<()> {
        self.check_key(key)?;
        match &self.imp {
            Impl::Peek(p) => p.add_listener(listener, key),
            #[cfg(target_os = "linux")]
            Impl::Epoll(p) => p.add_listener(listener, key),
        }
    }

    fn check_key(&self, key: usize) -> io::Result<()> {
        if key == RESERVED_KEY {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("key {key} is reserved by the poller"),
            ));
        }
        Ok(())
    }

    /// Deregisters `key`. Unknown keys are a no-op (the source may have
    /// been dispatched concurrently).
    pub fn delete(&self, key: usize) {
        match &self.imp {
            Impl::Peek(p) => p.delete(key),
            #[cfg(target_os = "linux")]
            Impl::Epoll(p) => p.delete(key),
        }
    }

    /// Number of registered sources (listeners included).
    pub fn len(&self) -> usize {
        match &self.imp {
            Impl::Peek(p) => p.len(),
            #[cfg(target_os = "linux")]
            Impl::Epoll(p) => p.len(),
        }
    }

    /// Whether no sources are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Blocks until at least one source is readable, `timeout` elapses
    /// (`None` waits forever), or [`Poller::notify`] is called; appends
    /// the ready events to `events` and reports what happened in the
    /// returned [`WaitResult`].
    ///
    /// # Errors
    ///
    /// Propagates `epoll_wait` failures; the peek backend is
    /// infallible. `EINTR` is retried internally, never surfaced.
    pub fn wait(
        &self,
        events: &mut Vec<Event>,
        timeout: Option<Duration>,
    ) -> io::Result<WaitResult> {
        let result = match &self.imp {
            Impl::Peek(p) => p.wait(events, timeout),
            #[cfg(target_os = "linux")]
            Impl::Epoll(p) => p.wait(events, timeout),
        }?;
        self.wakeups.fetch_add(1, Ordering::Relaxed);
        self.events.fetch_add(result.added as u64, Ordering::Relaxed);
        Ok(result)
    }

    /// Wakes a concurrent [`Poller::wait`] out of its sleep. Sticky: a
    /// notify with no waiter makes the next wait return immediately,
    /// with [`WaitResult::notified`] set.
    pub fn notify(&self) {
        match &self.imp {
            Impl::Peek(p) => p.notify(),
            #[cfg(target_os = "linux")]
            Impl::Epoll(p) => p.notify(),
        }
    }

    /// How many times [`Poller::wait`] has returned — the denominator
    /// of the wakeup-to-event ratio the metrics exposition reports.
    pub fn wakeups(&self) -> u64 {
        self.wakeups.load(Ordering::Relaxed)
    }

    /// Total readiness events reported across all waits (notify
    /// drains excluded).
    pub fn events_reported(&self) -> u64 {
        self.events.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The behavioral suite lives in tests/conformance.rs and runs
    // against every available backend; these tests cover the dispatch
    // layer itself.

    #[test]
    fn available_backends_prefer_the_kernel_multiplexer() {
        let backends = Backend::available();
        assert_eq!(backends.last(), Some(&Backend::Peek), "peek is always the fallback");
        #[cfg(target_os = "linux")]
        {
            assert_eq!(backends[0], Backend::Epoll);
            assert!(Backend::Epoll.event_driven());
            assert_eq!(Backend::Epoll.name(), "epoll");
        }
        assert!(!Backend::Peek.event_driven());
        assert_eq!(Backend::Peek.name(), "peek");
    }

    #[test]
    fn force_peek_env_selects_the_peek_backend() {
        // Process-global env mutation: this is the only test touching
        // the variable, and it restores the prior state before exiting.
        let prior = std::env::var("POLLING_FORCE_PEEK").ok();
        std::env::set_var("POLLING_FORCE_PEEK", "1");
        let forced = Poller::new().unwrap();
        assert_eq!(forced.backend(), Backend::Peek);
        std::env::set_var("POLLING_FORCE_PEEK", "0");
        let unforced = Poller::new().unwrap();
        assert_eq!(unforced.backend(), Backend::available()[0], "only the literal 1 forces");
        match prior {
            Some(v) => std::env::set_var("POLLING_FORCE_PEEK", v),
            None => std::env::remove_var("POLLING_FORCE_PEEK"),
        }
    }

    #[test]
    fn reserved_key_is_rejected_on_every_backend() {
        for &backend in Backend::available() {
            let poller = Poller::with_backend(backend).unwrap();
            let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            let stream = std::net::TcpStream::connect(listener.local_addr().unwrap()).unwrap();
            assert_eq!(
                poller.add(&stream, RESERVED_KEY).unwrap_err().kind(),
                io::ErrorKind::InvalidInput
            );
            assert_eq!(
                poller.add_listener(&listener, RESERVED_KEY).unwrap_err().kind(),
                io::ErrorKind::InvalidInput
            );
            assert!(poller.is_empty());
        }
    }

    #[test]
    fn wakeup_and_event_counters_accumulate() {
        let poller = Poller::default();
        let mut events = Vec::new();
        let r = poller.wait(&mut events, Some(Duration::from_millis(5))).unwrap();
        assert!(r.timed_out());
        assert_eq!(poller.wakeups(), 1);
        assert_eq!(poller.events_reported(), 0);
        poller.notify();
        let r = poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert!(r.notified);
        assert!(!r.timed_out());
        assert_eq!(poller.wakeups(), 2);
    }
}
