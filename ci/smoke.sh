#!/usr/bin/env bash
# Multi-process serving smoke test: real OS processes, real TCP, zero
# fixed ports. Every server binary binds port 0 and announces the
# kernel-assigned address as `C2PI_LISTENING <addr>` on stdout; we wait
# for that line (with a timeout) instead of sleeping and hoping.
#
# Covers:
#   1. the two-process lockstep demo (two_party_server/_client), both
#      backends — bit-identical to the in-memory path or exit 1;
#   2. the concurrent serving stack: a live reactor pi_server handling a
#      multi_client load generator that checks every prediction against
#      the clear model;
#   3. crash recovery over the sharded store segments (kill -9, warm
#      boot) and the backpressure path: a deliberately starved pool
#      shedding typed BUSY frames that retrying clients ride out;
#   4. the poller escape hatch: one serving scenario forced onto the
#      portable peek backend (POLLING_FORCE_PEEK=1), with the default
#      Linux run asserted to have picked epoll.
set -euo pipefail

cd "$(dirname "$0")/.."

WAIT_SECS="${SMOKE_WAIT_SECS:-60}"
CLIENT_TIMEOUT="${SMOKE_CLIENT_TIMEOUT:-300}"

cargo build --release --example two_party_server --example two_party_client \
    --example pi_server --example multi_client --example plan_report

BIN=target/release/examples
server_pid=""
server_log=""

cleanup() {
    if [[ -n "$server_pid" ]] && kill -0 "$server_pid" 2>/dev/null; then
        kill "$server_pid" 2>/dev/null || true
        wait "$server_pid" 2>/dev/null || true
    fi
}
trap cleanup EXIT

# start_server <logfile> <cmd...> — launches the server in the
# background of *this* shell (no command substitution: a subshell could
# not `wait` for it later).
start_server() {
    server_log="$1"
    shift
    : >"$server_log"
    "$@" >"$server_log" 2>&1 &
    server_pid=$!
}

# wait_for_addr — echoes the address the running server announced, or
# fails after the timeout.
wait_for_addr() {
    local deadline=$((SECONDS + WAIT_SECS))
    local addr=""
    while [[ -z "$addr" ]]; do
        if ! kill -0 "$server_pid" 2>/dev/null; then
            echo "smoke: server died before announcing its address:" >&2
            cat "$server_log" >&2
            return 1
        fi
        if ((SECONDS >= deadline)); then
            echo "smoke: server did not announce within ${WAIT_SECS}s" >&2
            cat "$server_log" >&2
            return 1
        fi
        addr=$(awk '/^C2PI_LISTENING /{print $2; exit}' "$server_log")
        [[ -n "$addr" ]] || sleep 0.1
    done
    echo "$addr"
}

# finish_server — waits for the backgrounded server and propagates its
# exit code.
finish_server() {
    local pid="$server_pid"
    server_pid=""
    wait "$pid"
}

echo "== two-process lockstep smoke (ephemeral ports) =="
for backend in cheetah delphi; do
    echo "-- backend $backend"
    start_server "target/smoke-two-party-$backend.log" \
        "$BIN/two_party_server" --backend "$backend" --addr 127.0.0.1:0
    addr=$(wait_for_addr)
    timeout "$CLIENT_TIMEOUT" "$BIN/two_party_client" --backend "$backend" --addr "$addr"
    finish_server
    cat "$server_log"
done

echo "== concurrent serving smoke: pi_server + multi_client =="
CLIENTS=4
ITERS=2
for backend in cheetah delphi; do
    echo "-- backend $backend"
    start_server "target/smoke-pi-server-$backend.log" \
        "$BIN/pi_server" --backend "$backend" --addr 127.0.0.1:0 \
        --serve-n $((CLIENTS * ITERS)) --preprocess 2 --workers "$CLIENTS" --shards 2
    addr=$(wait_for_addr)
    timeout "$CLIENT_TIMEOUT" "$BIN/multi_client" --backend "$backend" --addr "$addr" \
        --clients "$CLIENTS" --iters "$ITERS"
    finish_server
    cat "$server_log"
done

echo "== poller-backend smoke: forced peek fallback serves identically =="
# Same serving scenario as above, with POLLING_FORCE_PEEK=1 pinning the
# reactor to the portable peek-scan poller — the non-Linux code path,
# exercised on every platform. The final reactor line must name the
# backend actually used, proving the escape hatch was honoured; on
# Linux the earlier (unforced) run must have picked epoll by default.
start_server target/smoke-peek-poller.log \
    env POLLING_FORCE_PEEK=1 "$BIN/pi_server" --backend cheetah --addr 127.0.0.1:0 \
    --serve-n $((CLIENTS * ITERS)) --preprocess 2 --workers "$CLIENTS" --shards 2
addr=$(wait_for_addr)
timeout "$CLIENT_TIMEOUT" "$BIN/multi_client" --backend cheetah --addr "$addr" \
    --clients "$CLIENTS" --iters "$ITERS"
finish_server
cat "$server_log"
grep -Eq '^\[pi_server\] reactor: .*poll_backend=peek ' "$server_log" || {
    echo "smoke: POLLING_FORCE_PEEK=1 server did not run on the peek poller" >&2
    exit 1
}
if [[ "$(uname -s)" == Linux ]]; then
    grep -Eq '^\[pi_server\] reactor: .*poll_backend=epoll ' target/smoke-pi-server-cheetah.log || {
        echo "smoke: unforced Linux server did not default to the epoll poller" >&2
        exit 1
    }
fi

echo "== crash-recovery smoke: kill -9 the server, warm-boot from the store =="
# First life: attach one persistent MaterialStore segment per shard
# ($STORE.shard0, $STORE.shard1), preprocess WARM_PRE sets with the
# replenisher disabled (--pool-low 0), serve WARM_CLIENTS clients, then
# SIGKILL the process — no drain, no flush. Second life: same segments,
# zero preprocessing, and it must announce that exactly the unconsumed
# sets came back (C2PI_WARMBOOT restored=<preprocessed − served>) and
# serve WARM_CLIENTS more clients from them. The expected count is
# derived from the scenario variables so editing one cannot silently
# pass against a stale assertion.
WARM_PRE=6
WARM_CLIENTS=2
WARM_RESTORED=$((WARM_PRE - WARM_CLIENTS))
STORE=target/smoke-material-store.bin
rm -f "$STORE"*
start_server target/smoke-warmboot-1.log \
    "$BIN/pi_server" --backend cheetah --addr 127.0.0.1:0 \
    --persist "$STORE" --preprocess "$WARM_PRE" --pool-low 0 --pool-high 0 --workers 2 --shards 2
addr=$(wait_for_addr)
grep -q '^C2PI_WARMBOOT restored=0 ' target/smoke-warmboot-1.log || {
    echo "smoke: first life did not announce an empty warm boot" >&2
    cat target/smoke-warmboot-1.log >&2
    exit 1
}
timeout "$CLIENT_TIMEOUT" "$BIN/multi_client" --backend cheetah --addr "$addr" \
    --clients "$WARM_CLIENTS" --iters 1
kill -9 "$server_pid" 2>/dev/null
wait "$server_pid" 2>/dev/null || true
server_pid=""
cat target/smoke-warmboot-1.log

start_server target/smoke-warmboot-2.log \
    "$BIN/pi_server" --backend cheetah --addr 127.0.0.1:0 \
    --persist "$STORE" --preprocess 0 --pool-low 0 --pool-high 0 --workers 2 --shards 2 \
    --serve-n "$WARM_CLIENTS"
addr=$(wait_for_addr)
grep -q "^C2PI_WARMBOOT restored=$WARM_RESTORED " target/smoke-warmboot-2.log || {
    echo "smoke: restart did not restore the $WARM_RESTORED unconsumed sets from the store" >&2
    cat target/smoke-warmboot-2.log >&2
    exit 1
}
timeout "$CLIENT_TIMEOUT" "$BIN/multi_client" --backend cheetah --addr "$addr" \
    --clients "$WARM_CLIENTS" --iters 1
finish_server
cat target/smoke-warmboot-2.log
# Serving the second wave from restored sets must not have dealt inline.
grep -q ' 0 inline ' target/smoke-warmboot-2.log || {
    echo "smoke: warm-booted server fell back to inline dealing" >&2
    exit 1
}
rm -f "$STORE"*

echo "== backpressure smoke: starved pool sheds, clients retry, graceful drain =="
# The server announces its address *before* dealing any material
# (--preprocess-delay-ms), so every early inference request is answered
# with a typed BUSY frame carrying the 50ms retry hint. The clients ride
# the hint (--retries) until the delayed offline phase lands, after
# which all four inferences must verify against the clear model; the
# server then drains gracefully (exit 0 via --serve-n). The shed counter
# in its final reactor line proves the backpressure path actually fired,
# and the ledger line proves nothing was dealt inline to paper over the
# starvation.
start_server target/smoke-backpressure.log \
    "$BIN/pi_server" --backend cheetah --addr 127.0.0.1:0 \
    --preprocess 4 --preprocess-delay-ms 500 --retry-after-ms 50 \
    --pool-low 0 --pool-high 0 --workers 2 --shards 2 --serve-n 4
addr=$(wait_for_addr)
timeout "$CLIENT_TIMEOUT" "$BIN/multi_client" --backend cheetah --addr "$addr" \
    --clients 4 --iters 1 --retries 100 --stats
finish_server
cat target/smoke-backpressure.log
grep -Eq '^\[pi_server\] reactor: accepted=[0-9]+ shed=[1-9]' target/smoke-backpressure.log || {
    echo "smoke: starved server never shed a request with a BUSY frame" >&2
    exit 1
}
grep -q ' 0 inline ' target/smoke-backpressure.log || {
    echo "smoke: starved server dealt inline instead of shedding" >&2
    exit 1
}

echo "== batching smoke: coalesced window, bit-identical logits =="
# Two lives of the same deterministic server (one worker, one shard, no
# replenisher: material sets 0..N-1 are consumed in stream order no
# matter how the wave is partitioned into batches), all N clients
# sending the same input. Reconstruction low bits depend on the
# consumed material set (probabilistic truncation), and batch order is
# racy — but the *multiset* of (input, material) pairings is invariant,
# so the sorted logit-bit dumps must diff clean. The batched life's
# final reactor line must prove real coalescing happened (coalesced>0),
# and the unbatched life must not have fused anything.
BATCH_CLIENTS=4
for mode in off on; do
    batch_flags=()
    if [[ $mode == on ]]; then
        batch_flags=(--batch-window-ms 200 --max-batch "$BATCH_CLIENTS")
    fi
    start_server "target/smoke-batch-$mode.log" \
        "$BIN/pi_server" --backend cheetah --addr 127.0.0.1:0 \
        --preprocess "$BATCH_CLIENTS" --pool-low 0 --pool-high 0 \
        --workers 1 --shards 1 --serve-n "$BATCH_CLIENTS" "${batch_flags[@]}"
    addr=$(wait_for_addr)
    timeout "$CLIENT_TIMEOUT" "$BIN/multi_client" --backend cheetah --addr "$addr" \
        --clients "$BATCH_CLIENTS" --iters 1 --fixed-seed 4242 \
        --dump-bits "target/smoke-batch-$mode.bits"
    finish_server
    cat "target/smoke-batch-$mode.log"
    sort "target/smoke-batch-$mode.bits" >"target/smoke-batch-$mode.sorted"
done
diff target/smoke-batch-off.sorted target/smoke-batch-on.sorted || {
    echo "smoke: batched logits are not bit-identical to the unbatched reference" >&2
    exit 1
}
grep -Eq '^\[pi_server\] reactor: .*coalesced=[1-9]' target/smoke-batch-on.log || {
    echo "smoke: batching server never coalesced concurrent requests" >&2
    exit 1
}
grep -Eq '^\[pi_server\] reactor: .*coalesced=0 batches=0 ' target/smoke-batch-off.log || {
    echo "smoke: unbatched server unexpectedly fused a batch" >&2
    exit 1
}

echo "== deployment-planner smoke: deterministic plan + round-trip =="
# plan_report exits non-zero unless every smoke prediction round-trips
# bit-identically through the top-ranked plan; running it twice and
# diffing pins the byte-identical-output contract at release speed.
# Keep stderr (progress + any round-trip mismatch diagnostics) in a
# log so a failure is debuggable from the CI output.
run_plan_report() {
    local out=$1 log=$2
    if ! "$BIN/plan_report" --seed 47 >"$out" 2>"$log"; then
        echo "smoke: plan_report failed; its stderr follows" >&2
        cat "$log" >&2
        exit 1
    fi
}
run_plan_report target/smoke-plan-a.txt target/smoke-plan-a.log
run_plan_report target/smoke-plan-b.txt target/smoke-plan-b.log
diff target/smoke-plan-a.txt target/smoke-plan-b.txt || {
    echo "smoke: plan_report output is not byte-identical across runs" >&2
    exit 1
}
head -3 target/smoke-plan-a.txt

echo "smoke: OK"
