#!/usr/bin/env bash
# Documentation integrity check.
#
# 1. Code fences: every `rust` fence in README.md and docs/*.md is
#    compiled as a doctest of the umbrella crate (src/lib.rs pulls the
#    markdown in via #[doc = include_str!(..)] under cfg(doctest)), so
#    a snippet that drifts from the current API fails the build here.
# 2. Links: relative markdown links in README.md and docs/*.md must
#    point at files that exist in the repo.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== doccheck: compile README + docs markdown fences as doctests =="
cargo test --doc -p c2pi-suite -q

echo "== doccheck: relative markdown links resolve =="
fail=0
for md in README.md DESIGN.md docs/*.md; do
    dir=$(dirname "$md")
    # Extract ](target) links; ignore absolute URLs and pure anchors.
    while IFS= read -r target; do
        target="${target%%#*}"
        [[ -z "$target" ]] && continue
        case "$target" in
        http://* | https://* | mailto:*) continue ;;
        esac
        if [[ ! -e "$dir/$target" ]]; then
            echo "doccheck: broken link in $md -> $target" >&2
            fail=1
        fi
    done < <(grep -oE '\]\([^)]+\)' "$md" | sed -E 's/^\]\(//; s/\)$//')
done

if ((fail)); then
    exit 1
fi
echo "doccheck: OK"
