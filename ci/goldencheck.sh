#!/usr/bin/env bash
# Golden-staleness gate: regenerates every committed golden from the
# current code and fails when the working tree's copies differ — a
# planner-visible cost change cannot land without regenerating goldens.
#
# Covers:
#   1. tests/golden/plan_table.txt — rewritten in place by the
#      plan_determinism test's GOLDEN_UPDATE hook, then diffed against
#      HEAD via git (so a stale committed copy fails even after the
#      regeneration overwrote it);
#   2. tests/golden/plan_report.json — the machine-readable plan of the
#      smoke scenario (`plan_report --seed 47 --json`), extracted from
#      the report output and diffed against the committed copy.
#
# To refresh after an intentional cost change:
#   GOLDEN_UPDATE=1 cargo test --release --test plan_determinism
#   ci/goldencheck.sh   # regenerates plan_report.json too, then verifies
set -euo pipefail

cd "$(dirname "$0")/.."

# Regenerate everything first, check staleness after — so one local run
# refreshes every golden even when an early check would fail.
echo "== goldencheck: regenerate plan_table.txt =="
GOLDEN_UPDATE=1 cargo test --release --test plan_determinism -q

echo "== goldencheck: regenerate plan_report.json =="
cargo build --release --example plan_report
target/release/examples/plan_report --seed 47 --json \
    >target/goldencheck-plan-report.txt 2>target/goldencheck-plan-report.log || {
    echo "goldencheck: plan_report failed; its stderr follows" >&2
    cat target/goldencheck-plan-report.log >&2
    exit 1
}
# The report prints the human table first, then the JSON document (the
# only lines from a column-0 '{' to a column-0 '}').
sed -n '/^{/,/^}/p' target/goldencheck-plan-report.txt \
    >target/goldencheck-plan-report.json
if [[ ! -s target/goldencheck-plan-report.json ]]; then
    echo "goldencheck: no JSON document found in plan_report output" >&2
    exit 1
fi
if [[ "${GOLDEN_UPDATE:-0}" == "1" ]] || [[ ! -f tests/golden/plan_report.json ]]; then
    cp target/goldencheck-plan-report.json tests/golden/plan_report.json
    echo "goldencheck: wrote tests/golden/plan_report.json"
fi

echo "== goldencheck: staleness =="
fail=0
if ! diff -u tests/golden/plan_report.json target/goldencheck-plan-report.json; then
    echo "goldencheck: FAIL — tests/golden/plan_report.json is stale;" \
         "rerun with GOLDEN_UPDATE=1 and commit the result" >&2
    fail=1
fi
# git-diff the regenerated files against the committed copies: the
# GOLDEN_UPDATE hook above rewrote the working tree, so any drift from
# HEAD means the commit under test shipped stale goldens.
if ! git diff --exit-code -- tests/golden/plan_table.txt tests/golden/plan_report.json; then
    echo "goldencheck: FAIL — committed goldens are stale;" \
         "commit the regenerated copies (diff above)" >&2
    fail=1
fi
[[ "$fail" == 0 ]] || exit 1

echo "goldencheck: OK"
