#!/usr/bin/env bash
# Bench smoke: runs the serving-relevant criterion benches in quick mode
# and merges the shim's per-bench JSON into one BENCH_results.json at
# the repo root — the machine-readable perf trajectory CI uploads as an
# artifact on every run.
#
# Quick mode is the shim's CLI override (see shims/criterion): the
# bench's programmatic sample sizes are clamped so one run fits a CI
# budget. Pass different flags via BENCH_SMOKE_FLAGS, e.g.
#   BENCH_SMOKE_FLAGS="--test" ci/bench_smoke.sh     # one sample per row
set -euo pipefail

cd "$(dirname "$0")/.."

BENCHES=(serving_throughput session_phases transport_matrix planner_sweep gc_throughput poller_scale)
FLAGS=${BENCH_SMOKE_FLAGS:---measurement-time 1 --sample-size 3}
# Absolute path: cargo runs bench binaries with the *package* directory
# as cwd, so a relative CRITERION_OUT_JSON would land in crates/bench.
OUT_DIR="$PWD/target/bench-smoke"
mkdir -p "$OUT_DIR"

# The regression baseline is the *committed* BENCH_results.json (HEAD),
# not the working-tree file — otherwise a second run would compare
# against its own output and a regression could ratchet past the gate
# in sub-limit steps. Fall back to the tree file outside a git checkout.
BASELINE="$OUT_DIR/BENCH_results.baseline.json"
if ! git show HEAD:BENCH_results.json >"$BASELINE" 2>/dev/null; then
    cp BENCH_results.json "$BASELINE"
fi

json_files=()
for bench in "${BENCHES[@]}"; do
    echo "== bench $bench (quick mode: $FLAGS) =="
    rm -f "$OUT_DIR/$bench.json"
    # shellcheck disable=SC2086  # FLAGS is intentionally word-split
    CRITERION_OUT_JSON="$OUT_DIR/$bench.json" \
        cargo bench -p c2pi-bench --bench "$bench" -- $FLAGS
    test -s "$OUT_DIR/$bench.json" # the bench must have written results
    json_files+=("$OUT_DIR/$bench.json")
done

cargo run --release -p c2pi-bench --bin bench_summary -- "${json_files[@]}" \
    >BENCH_results.json
echo "wrote BENCH_results.json:"
head -3 BENCH_results.json

# Regression gates: every guarded row lives in the committed rules file
# (metric id, direction, max ratio) — protocol hot path, reactor burst,
# GC garbling throughput, and the exact-pinned garbled-table sizes.
# Loosen every non-pinned limit at once via BENCH_GUARD_SCALE (e.g.
# BENCH_GUARD_SCALE=10 on a machine swap that invalidates the baseline);
# editing a single rule means editing ci/bench_guard_rules.json.
cargo run --release -p c2pi-bench --bin bench_guard -- \
    "$BASELINE" BENCH_results.json ci/bench_guard_rules.json

# Append a dated snapshot to the committed history log so the perf
# trajectory survives in-repo (one JSONL line per run: date, commit,
# full results object). BENCH_results.json is a single JSON document;
# collapse it to one line so the history stays line-oriented.
DATE_UTC=$(date -u +%Y-%m-%dT%H:%M:%SZ)
COMMIT=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)
RESULTS_ONE_LINE=$(tr -d '\n' <BENCH_results.json | tr -s ' ')
printf '{"date":"%s","commit":"%s","results":%s}\n' \
    "$DATE_UTC" "$COMMIT" "$RESULTS_ONE_LINE" >>BENCH_history.jsonl
echo "appended run to BENCH_history.jsonl ($(wc -l <BENCH_history.jsonl) entries)"
