#!/usr/bin/env bash
# Bench smoke: runs the serving-relevant criterion benches in quick mode
# and merges the shim's per-bench JSON into one BENCH_results.json at
# the repo root — the machine-readable perf trajectory CI uploads as an
# artifact on every run.
#
# Quick mode is the shim's CLI override (see shims/criterion): the
# bench's programmatic sample sizes are clamped so one run fits a CI
# budget. Pass different flags via BENCH_SMOKE_FLAGS, e.g.
#   BENCH_SMOKE_FLAGS="--test" ci/bench_smoke.sh     # one sample per row
set -euo pipefail

cd "$(dirname "$0")/.."

BENCHES=(serving_throughput session_phases transport_matrix planner_sweep)
FLAGS=${BENCH_SMOKE_FLAGS:---measurement-time 1 --sample-size 3}
# Absolute path: cargo runs bench binaries with the *package* directory
# as cwd, so a relative CRITERION_OUT_JSON would land in crates/bench.
OUT_DIR="$PWD/target/bench-smoke"
mkdir -p "$OUT_DIR"

json_files=()
for bench in "${BENCHES[@]}"; do
    echo "== bench $bench (quick mode: $FLAGS) =="
    rm -f "$OUT_DIR/$bench.json"
    # shellcheck disable=SC2086  # FLAGS is intentionally word-split
    CRITERION_OUT_JSON="$OUT_DIR/$bench.json" \
        cargo bench -p c2pi-bench --bench "$bench" -- $FLAGS
    test -s "$OUT_DIR/$bench.json" # the bench must have written results
    json_files+=("$OUT_DIR/$bench.json")
done

cargo run --release -p c2pi-bench --bin bench_summary -- "${json_files[@]}" \
    >BENCH_results.json
echo "wrote BENCH_results.json:"
head -3 BENCH_results.json
