//! # c2pi-suite
//!
//! Umbrella crate re-exporting the whole C2PI workspace under one
//! namespace, for examples, integration tests and downstream users who
//! want a single dependency.
//!
//! Start with [`core`] (the serving API and the deployment planner) and
//! `docs/ARCHITECTURE.md` (how the nine crates fit together).
//!
//! ```
//! // Every crate is reachable through its re-export:
//! let lan = c2pi_suite::transport::NetModel::lan();
//! assert_eq!(lan.name, "lan");
//! let probe = c2pi_suite::attacks::ProbeSpec::parse("mla:40").unwrap();
//! assert_eq!(probe.kind.name(), "mla");
//! ```

pub use c2pi_attacks as attacks;
pub use c2pi_core as core;
pub use c2pi_data as data;
pub use c2pi_mpc as mpc;
pub use c2pi_nn as nn;
pub use c2pi_pi as pi;
pub use c2pi_tensor as tensor;
pub use c2pi_transport as transport;

/// Compile-checks the README's `rust` code fences as doctests: every
/// fenced block must build against the current API (run by
/// `cargo test --doc -p c2pi-suite`, wired into CI via `ci/doccheck.sh`).
#[cfg(doctest)]
#[doc = include_str!("../README.md")]
mod readme_doctests {}

/// Compile-checks `docs/ARCHITECTURE.md`'s `rust` code fences as
/// doctests, same contract as [`readme_doctests`].
#[cfg(doctest)]
#[doc = include_str!("../docs/ARCHITECTURE.md")]
mod architecture_doctests {}
