//! Umbrella crate re-exporting the C2PI workspace for examples/tests.
pub use c2pi_attacks as attacks;
pub use c2pi_core as core;
pub use c2pi_data as data;
pub use c2pi_mpc as mpc;
pub use c2pi_nn as nn;
pub use c2pi_pi as pi;
pub use c2pi_tensor as tensor;
pub use c2pi_transport as transport;
