//! Integration tests of the privacy story: attacks degrade with depth
//! and noise, and the revealed C2PI activation resists reconstruction at
//! deep boundaries.

use c2pi_suite::attacks::dina::{Dina, DinaConfig};
use c2pi_suite::attacks::eval::{avg_ssim_at, EvalConfig};
use c2pi_suite::attacks::inversion::{InaConfig, InversionAttack};
use c2pi_suite::attacks::mla::{Mla, MlaConfig};
use c2pi_suite::attacks::Idpa;
use c2pi_suite::core::session::C2pi;
use c2pi_suite::data::metrics::ssim;
use c2pi_suite::data::synth::{SynthConfig, SynthDataset};
use c2pi_suite::data::Dataset;
use c2pi_suite::nn::model::{alexnet, ZooConfig};
use c2pi_suite::nn::{BoundaryId, Model};
use c2pi_suite::pi::cheetah;

fn setup() -> (Model, Dataset) {
    let model =
        alexnet(&ZooConfig { width_div: 32, seed: 3, image_size: 32, num_classes: 4 }).unwrap();
    let data = SynthDataset::generate(&SynthConfig {
        classes: 4,
        per_class: 4,
        image_size: 32,
        seed: 21,
        pixel_noise: 0.02,
    })
    .into_dataset();
    (model, data)
}

#[test]
fn mla_ssim_decreases_with_depth() {
    let (mut model, data) = setup();
    let cfg = EvalConfig { noise: 0.0, eval_images: 2, ..Default::default() };
    let mut mla = Mla::new(MlaConfig { iterations: 120, lr: 0.08, seed: 1 });
    let shallow = avg_ssim_at(&mut mla, &mut model, BoundaryId::relu(1), &data, &cfg).unwrap();
    let deep = avg_ssim_at(&mut mla, &mut model, BoundaryId::relu(6), &data, &cfg).unwrap();
    assert!(shallow > deep, "shallow {shallow} vs deep {deep}");
}

#[test]
fn trained_inversion_attack_beats_mla_at_mid_depth() {
    // The paper's motivation for moving beyond MLA: learned decoders
    // reconstruct better at layers where gradient descent stalls.
    let (mut model, data) = setup();
    let (train, eval) = data.split(0.75, 2).unwrap();
    let id = BoundaryId::relu(3);
    let cfg = EvalConfig { noise: 0.0, eval_images: 2, ..Default::default() };
    let mut mla = Mla::new(MlaConfig { iterations: 100, lr: 0.08, seed: 3 });
    let mla_ssim = avg_ssim_at(&mut mla, &mut model, id, &eval, &cfg).unwrap();
    let mut eina = InversionAttack::new(InaConfig { epochs: 40, ..Default::default() });
    eina.prepare(&mut model, id, &train, 0.0).unwrap();
    let eina_ssim = avg_ssim_at(&mut eina, &mut model, id, &eval, &cfg).unwrap();
    // At this miniature scale we only require EINA to be competitive.
    assert!(eina_ssim > mla_ssim - 0.1, "eina {eina_ssim} should not be far below mla {mla_ssim}");
}

#[test]
fn dina_against_real_c2pi_reveal_is_weak_at_deep_boundary() {
    let (mut model, data) = setup();
    let boundary = BoundaryId::relu(6);
    // Curious server trains DINA on its own data, anticipating λ=0.1.
    let mut dina = Dina::new(DinaConfig { epochs: 15, ..Default::default() });
    dina.prepare(&mut model, boundary, &data, 0.1).unwrap();
    // Honest client runs the real pipeline.
    let secret = data.images()[1].clone();
    let mut session = C2pi::builder(model.clone())
        .split_at(boundary)
        .noise(0.1)
        .noise_seed(77)
        .backend(cheetah())
        .build()
        .unwrap();
    let result = session.infer(&secret).unwrap();
    let revealed = result.revealed_activation.unwrap();
    let rec = dina.recover(&mut model, boundary, &revealed).unwrap();
    let s = ssim(&secret, &rec).unwrap();
    assert!(s < 0.5, "deep-boundary reconstruction should be poor, got {s}");
}

#[test]
fn defense_noise_lowers_attack_ssim() {
    // Attacker trains its decoder on clean activations; the defender's
    // evaluation-time noise must degrade the reconstruction.
    let (mut model, data) = setup();
    let (train, eval) = data.split(0.75, 5).unwrap();
    let id = BoundaryId::relu(2);
    let mut dina = Dina::new(DinaConfig { epochs: 15, ..Default::default() });
    dina.prepare(&mut model, id, &train, 0.0).unwrap();
    let score = |noise: f32, model: &mut Model, dina: &mut Dina| {
        let cfg = EvalConfig { noise, eval_images: 2, ..Default::default() };
        avg_ssim_at(dina, model, id, &eval, &cfg).unwrap()
    };
    let clean = score(0.0, &mut model, &mut dina);
    let heavy = score(3.0, &mut model, &mut dina);
    assert!(heavy < clean, "noise should hurt: {heavy} !< {clean}");
}
