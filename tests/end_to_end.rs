//! Integration tests spanning the whole workspace: data → training →
//! boundary → crypto-clear inference, checked against plaintext, through
//! the session-based serving API.

use c2pi_suite::core::pipeline::plain_prediction;
use c2pi_suite::core::session::C2pi;
use c2pi_suite::core::Split;
use c2pi_suite::data::synth::{SynthConfig, SynthDataset};
use c2pi_suite::nn::model::{alexnet, by_name, ZooConfig};
use c2pi_suite::nn::train::{evaluate_accuracy, train_classifier, TrainConfig};
use c2pi_suite::nn::BoundaryId;
use c2pi_suite::pi::engine::PiBackend;
use c2pi_suite::transport::NetModel;
use c2pi_tensor::Tensor;

fn tiny_model() -> c2pi_suite::nn::Model {
    alexnet(&ZooConfig { width_div: 32, seed: 3, image_size: 16, num_classes: 10 }).unwrap()
}

#[test]
fn c2pi_agrees_with_plaintext_on_several_images_both_backends() {
    for backend in [PiBackend::Cheetah, PiBackend::Delphi] {
        let model = tiny_model();
        let mut session = C2pi::builder(model.clone())
            .split_at(BoundaryId::relu(3))
            .noise(0.0)
            .backend(backend)
            .build()
            .unwrap();
        session.preprocess(3).unwrap();
        for seed in 0..3u64 {
            let x = Tensor::rand_uniform(&[1, 3, 16, 16], 0.0, 1.0, seed);
            let expected = plain_prediction(&model, &x).unwrap();
            let got = session.infer(&x).unwrap();
            assert_eq!(got.prediction, expected, "backend {backend:?} seed {seed}");
            // All three ran online against the preprocessed pool.
            assert_eq!(got.report.preprocessing.generated_inline, 0);
        }
        assert_eq!(session.ledger().consumed, 3);
    }
}

#[test]
fn trained_model_keeps_accuracy_through_c2pi_batch() {
    // Train a small classifier, then check that the crypto-clear
    // execution preserves its predictions on the training set, served
    // as one preprocessed batch.
    let data = SynthDataset::generate(&SynthConfig {
        classes: 3,
        per_class: 4,
        image_size: 16,
        seed: 5,
        pixel_noise: 0.02,
    })
    .into_dataset();
    let mut model =
        alexnet(&ZooConfig { width_div: 32, seed: 3, image_size: 16, num_classes: 3 }).unwrap();
    train_classifier(
        model.seq_mut(),
        data.images(),
        data.labels(),
        &TrainConfig { epochs: 15, batch_size: 4, lr: 0.02, momentum: 0.9, seed: 1 },
    )
    .unwrap();
    let acc = evaluate_accuracy(model.seq_mut(), data.images(), data.labels()).unwrap();
    assert!(acc > 0.5, "training failed: {acc}");
    let mut session = C2pi::builder(model.clone())
        .split_at(BoundaryId::relu(4))
        .noise(0.0)
        .backend(PiBackend::Cheetah)
        .build()
        .unwrap();
    let batch: Vec<Tensor> = data.images().iter().take(6).cloned().collect();
    session.preprocess(batch.len()).unwrap();
    let results = session.infer_batch(&batch).unwrap();
    let mut agreement = 0usize;
    for (x, res) in batch.iter().zip(&results) {
        if plain_prediction(&model, x).unwrap() == res.prediction {
            agreement += 1;
        }
    }
    assert_eq!(agreement, 6, "crypto-clear execution changed predictions");
    let ledger = session.ledger();
    assert_eq!(ledger.consumed, 6);
    assert_eq!(ledger.generated_inline, 0, "batch should run on pooled material");
}

#[test]
fn full_pi_costs_more_than_every_c2pi_boundary() {
    let model = tiny_model();
    let x = Tensor::rand_uniform(&[1, 3, 16, 16], 0.0, 1.0, 9);
    let mut full = C2pi::builder(model.clone()).full_pi().noise(0.1).build().unwrap();
    let full_cost = full.infer(&x).unwrap().report.comm_mb();
    let mut last = 0.0f64;
    for conv in [1usize, 3, 5] {
        let mut session = C2pi::builder(model.clone())
            .split_at(BoundaryId::relu(conv))
            .noise(0.1)
            .build()
            .unwrap();
        let cost = session.infer(&x).unwrap().report.comm_mb();
        assert!(cost < full_cost, "boundary {conv}: {cost} !< {full_cost}");
        assert!(cost > last, "cost should grow with boundary depth");
        last = cost;
    }
}

#[test]
fn delphi_is_heavier_than_cheetah_end_to_end() {
    // The Table II asymmetry must survive the full pipeline: Delphi
    // moves an order of magnitude more bytes (garbled tables, HE
    // ciphertexts), which dominates wherever bandwidth or compute is
    // the constraint (total comm, LAN latency). On WAN the picture
    // legitimately inverts since the offline-garbling refactor:
    // Delphi's online phase is one round trip per non-linear layer,
    // while Cheetah's comparison tree pays hundreds of RTTs — so we pin
    // the flight asymmetry rather than the WAN wall clock.
    let model = tiny_model();
    let x = Tensor::rand_uniform(&[1, 3, 16, 16], 0.0, 1.0, 10);
    let boundary = BoundaryId::relu(3);
    let run = |backend| {
        let mut session = C2pi::builder(model.clone())
            .split_at(boundary)
            .noise(0.1)
            .backend(backend)
            .build()
            .unwrap();
        let r = session.infer(&x).unwrap().report;
        (r.comm_mb(), r.latency_seconds(&NetModel::lan()), r.online.flights)
    };
    let (delphi_mb, delphi_lan, delphi_flights) = run(PiBackend::Delphi);
    let (cheetah_mb, cheetah_lan, cheetah_flights) = run(PiBackend::Cheetah);
    assert!(delphi_mb > 2.0 * cheetah_mb, "comm: {delphi_mb} vs {cheetah_mb}");
    assert!(delphi_lan > cheetah_lan, "lan: {delphi_lan} vs {cheetah_lan}");
    assert!(delphi_flights * 5 < cheetah_flights, "flights: {delphi_flights} vs {cheetah_flights}");
}

#[test]
fn all_zoo_models_run_under_c2pi() {
    for name in ["alexnet", "vgg16", "vgg19"] {
        let model =
            by_name(name, &ZooConfig { width_div: 32, seed: 3, image_size: 32, num_classes: 10 })
                .unwrap();
        let x = Tensor::rand_uniform(&[1, 3, 32, 32], 0.0, 1.0, 12);
        let expected = plain_prediction(&model, &x).unwrap();
        let mut session = C2pi::builder(model)
            .split_at(BoundaryId::relu(2))
            .noise(0.0)
            .backend(PiBackend::Cheetah)
            .build()
            .unwrap();
        let res = session.infer(&x).unwrap();
        assert_eq!(res.prediction, expected, "model {name}");
        assert!(matches!(session.split(), Split::At(_)));
    }
}

#[test]
fn noise_changes_logits_but_modestly_at_small_lambda() {
    let model = tiny_model();
    let x = Tensor::rand_uniform(&[1, 3, 16, 16], 0.0, 1.0, 13);
    let boundary = BoundaryId::relu(5);
    let run = |noise: f32| {
        let mut session =
            C2pi::builder(model.clone()).split_at(boundary).noise(noise).build().unwrap();
        session.infer(&x).unwrap().logits
    };
    let clean = run(0.0);
    let small = run(0.1);
    let big = run(5.0);
    let dist = |a: &Tensor, b: &Tensor| a.sub(b).unwrap().sq_norm();
    assert!(dist(&clean, &small) < dist(&clean, &big));
}

#[test]
fn preprocessing_moves_dealer_cost_off_the_online_path() {
    // The ledger distinguishes true online latency from lazily generated
    // material: a preprocessed inference reports zero inline generation,
    // a cold one reports it.
    let model = tiny_model();
    let x = Tensor::rand_uniform(&[1, 3, 16, 16], 0.0, 1.0, 14);
    let mut warm =
        C2pi::builder(model.clone()).split_at(BoundaryId::relu(3)).noise(0.1).build().unwrap();
    warm.preprocess(1).unwrap();
    let warm_res = warm.infer(&x).unwrap();
    assert_eq!(warm_res.report.preprocessing.generated_inline, 0);
    assert!(warm_res.report.preprocessing.generation_seconds > 0.0);
    let mut cold = C2pi::builder(model).split_at(BoundaryId::relu(3)).noise(0.1).build().unwrap();
    let cold_res = cold.infer(&x).unwrap();
    assert_eq!(cold_res.report.preprocessing.generated_inline, 1);
    assert_eq!(cold_res.report.preprocessing.generated_offline, 0);
}
