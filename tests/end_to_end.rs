//! Integration tests spanning the whole workspace: data → training →
//! boundary → crypto-clear inference, checked against plaintext.

use c2pi_suite::core::pipeline::{plain_prediction, C2piPipeline, PipelineConfig, Split};
use c2pi_suite::data::synth::{SynthConfig, SynthDataset};
use c2pi_suite::nn::model::{alexnet, by_name, ZooConfig};
use c2pi_suite::nn::train::{evaluate_accuracy, train_classifier, TrainConfig};
use c2pi_suite::nn::BoundaryId;
use c2pi_suite::pi::engine::{PiBackend, PiConfig};
use c2pi_suite::transport::NetModel;
use c2pi_tensor::Tensor;

fn tiny_model() -> c2pi_suite::nn::Model {
    alexnet(&ZooConfig { width_div: 32, seed: 3, image_size: 16, num_classes: 10 }).unwrap()
}

fn pipeline_cfg(backend: PiBackend, noise: f32) -> PipelineConfig {
    PipelineConfig { pi: PiConfig { backend, ..Default::default() }, noise, noise_seed: 11 }
}

#[test]
fn c2pi_agrees_with_plaintext_on_several_images_both_backends() {
    for backend in [PiBackend::Cheetah, PiBackend::Delphi] {
        let model = tiny_model();
        let mut pipe =
            C2piPipeline::new(model.clone(), BoundaryId::relu(3), pipeline_cfg(backend, 0.0))
                .unwrap();
        for seed in 0..3u64 {
            let x = Tensor::rand_uniform(&[1, 3, 16, 16], 0.0, 1.0, seed);
            let expected = plain_prediction(&mut model.clone(), &x).unwrap();
            let got = pipe.infer(&x).unwrap();
            assert_eq!(got.prediction, expected, "backend {backend:?} seed {seed}");
        }
    }
}

#[test]
fn trained_model_keeps_accuracy_through_c2pi() {
    // Train a small classifier, then check that the crypto-clear
    // execution preserves its predictions on the training set.
    let data = SynthDataset::generate(&SynthConfig {
        classes: 3,
        per_class: 4,
        image_size: 16,
        seed: 5,
        pixel_noise: 0.02,
    })
    .into_dataset();
    let mut model = alexnet(&ZooConfig {
        width_div: 32,
        seed: 3,
        image_size: 16,
        num_classes: 3,
    })
    .unwrap();
    train_classifier(
        model.seq_mut(),
        data.images(),
        data.labels(),
        &TrainConfig { epochs: 15, batch_size: 4, lr: 0.02, momentum: 0.9, seed: 1 },
    )
    .unwrap();
    let acc = evaluate_accuracy(model.seq_mut(), data.images(), data.labels()).unwrap();
    assert!(acc > 0.5, "training failed: {acc}");
    let mut pipe = C2piPipeline::new(
        model.clone(),
        BoundaryId::relu(4),
        pipeline_cfg(PiBackend::Cheetah, 0.0),
    )
    .unwrap();
    let mut agreement = 0usize;
    for x in data.images().iter().take(6) {
        let plain = plain_prediction(&mut model.clone(), x).unwrap();
        let secure = pipe.infer(x).unwrap().prediction;
        if plain == secure {
            agreement += 1;
        }
    }
    assert_eq!(agreement, 6, "crypto-clear execution changed predictions");
}

#[test]
fn full_pi_costs_more_than_every_c2pi_boundary() {
    let model = tiny_model();
    let x = Tensor::rand_uniform(&[1, 3, 16, 16], 0.0, 1.0, 9);
    let mut full = C2piPipeline::full_pi(model.clone(), pipeline_cfg(PiBackend::Cheetah, 0.1));
    let full_cost = full.infer(&x).unwrap().report.comm_mb();
    let mut last = 0.0f64;
    for conv in [1usize, 3, 5] {
        let mut pipe = C2piPipeline::new(
            model.clone(),
            BoundaryId::relu(conv),
            pipeline_cfg(PiBackend::Cheetah, 0.1),
        )
        .unwrap();
        let cost = pipe.infer(&x).unwrap().report.comm_mb();
        assert!(cost < full_cost, "boundary {conv}: {cost} !< {full_cost}");
        assert!(cost > last, "cost should grow with boundary depth");
        last = cost;
    }
}

#[test]
fn delphi_is_heavier_than_cheetah_end_to_end() {
    // The Table II asymmetry must survive the full pipeline.
    let model = tiny_model();
    let x = Tensor::rand_uniform(&[1, 3, 16, 16], 0.0, 1.0, 10);
    let boundary = BoundaryId::relu(3);
    let run = |backend| {
        let mut pipe =
            C2piPipeline::new(model.clone(), boundary, pipeline_cfg(backend, 0.1)).unwrap();
        let r = pipe.infer(&x).unwrap().report;
        (r.comm_mb(), r.latency_seconds(&NetModel::wan()))
    };
    let (delphi_mb, delphi_wan) = run(PiBackend::Delphi);
    let (cheetah_mb, cheetah_wan) = run(PiBackend::Cheetah);
    assert!(delphi_mb > 2.0 * cheetah_mb, "comm: {delphi_mb} vs {cheetah_mb}");
    assert!(delphi_wan > cheetah_wan, "wan: {delphi_wan} vs {cheetah_wan}");
}

#[test]
fn all_zoo_models_run_under_c2pi() {
    for name in ["alexnet", "vgg16", "vgg19"] {
        let model = by_name(
            name,
            &ZooConfig { width_div: 32, seed: 3, image_size: 32, num_classes: 10 },
        )
        .unwrap();
        let x = Tensor::rand_uniform(&[1, 3, 32, 32], 0.0, 1.0, 12);
        let expected = plain_prediction(&mut model.clone(), &x).unwrap();
        let mut pipe = C2piPipeline::new(
            model,
            BoundaryId::relu(2),
            pipeline_cfg(PiBackend::Cheetah, 0.0),
        )
        .unwrap();
        let res = pipe.infer(&x).unwrap();
        assert_eq!(res.prediction, expected, "model {name}");
        assert!(matches!(pipe.split(), Split::At(_)));
    }
}

#[test]
fn noise_changes_logits_but_modestly_at_small_lambda() {
    let model = tiny_model();
    let x = Tensor::rand_uniform(&[1, 3, 16, 16], 0.0, 1.0, 13);
    let boundary = BoundaryId::relu(5);
    let run = |noise: f32| {
        let mut pipe =
            C2piPipeline::new(model.clone(), boundary, pipeline_cfg(PiBackend::Cheetah, noise))
                .unwrap();
        pipe.infer(&x).unwrap().logits
    };
    let clean = run(0.0);
    let small = run(0.1);
    let big = run(5.0);
    let dist = |a: &Tensor, b: &Tensor| a.sub(b).unwrap().sq_norm();
    assert!(dist(&clean, &small) < dist(&clean, &big));
}
