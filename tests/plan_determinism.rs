//! Determinism contract of the deployment planner: the same seed must
//! produce byte-identical plans — across repeated runs, against the
//! committed golden file, and across transports (the cost sweep
//! measures the protocol transcript, which is transport-independent).
//!
//! `ci/smoke.sh` additionally runs the full `plan_report` example twice
//! at release speed and diffs the stdout, so the end-user command line
//! is covered too. This test pins the same code path at a budget that
//! fits `cargo test`'s debug profile.
//!
//! To regenerate the golden file after an intentional planner change:
//! `GOLDEN_UPDATE=1 cargo test --test plan_determinism`.

use c2pi_suite::attacks::probe::ProbeSpec;
use c2pi_suite::core::planner::{DeploymentPlan, DeploymentPlanner, PlannerConfig};
use c2pi_suite::data::synth::{SynthConfig, SynthDataset};
use c2pi_suite::data::Dataset;
use c2pi_suite::nn::model::{alexnet, Model, ZooConfig};
use c2pi_suite::nn::train::{train_classifier, TrainConfig};
use c2pi_suite::nn::BoundaryId;
use c2pi_suite::transport::TcpLoopbackTransport;
use std::path::Path;

fn setup() -> (Model, Dataset, Dataset) {
    let data = SynthDataset::generate(&SynthConfig {
        classes: 3,
        per_class: 4,
        image_size: 16,
        pixel_noise: 0.02,
        ..Default::default()
    })
    .into_dataset();
    let (train, eval) = data.split(0.7, 3).unwrap();
    let mut model =
        alexnet(&ZooConfig { width_div: 32, num_classes: 3, image_size: 16, seed: 42 }).unwrap();
    train_classifier(
        model.seq_mut(),
        train.images(),
        train.labels(),
        &TrainConfig { epochs: 8, batch_size: 8, lr: 0.005, momentum: 0.9, seed: 7 },
    )
    .unwrap();
    (model, train, eval)
}

fn cfg(seed: u64) -> PlannerConfig {
    PlannerConfig {
        candidates: vec![BoundaryId::relu(2), BoundaryId::relu(5)],
        probes: vec![ProbeSpec::parse("mla:10").unwrap()],
        eval_images: 2,
        seed,
        ..Default::default()
    }
}

fn run_plan(seed: u64) -> DeploymentPlan {
    let (mut model, train, eval) = setup();
    DeploymentPlanner::new(&mut model, &train, &eval, cfg(seed)).plan().unwrap()
}

#[test]
fn plan_output_is_byte_identical_across_runs_and_matches_golden() {
    let a = run_plan(47);
    let b = run_plan(47);
    assert_eq!(a, b, "two fresh planner runs diverged");
    assert_eq!(a.render_table(), b.render_table());
    assert_eq!(a.to_json(), b.to_json());

    let golden_path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/plan_table.txt");
    let rendered = a.render_table();
    if std::env::var_os("GOLDEN_UPDATE").is_some() {
        std::fs::write(&golden_path, &rendered).unwrap();
    }
    let golden = std::fs::read_to_string(&golden_path)
        .expect("golden file missing: run with GOLDEN_UPDATE=1 to create it");
    assert_eq!(
        rendered, golden,
        "plan table drifted from tests/golden/plan_table.txt; if the change is \
         intentional, regenerate with GOLDEN_UPDATE=1"
    );
}

#[test]
fn chosen_boundary_is_identical_for_mem_and_tcp_transports() {
    // Cost-only config (no probes): the privacy audit is
    // transport-independent by construction, so isolate the cost sweep.
    let mut cost_cfg = cfg(47);
    cost_cfg.probes = Vec::new();
    let (mut model, train, eval) = setup();
    let mem_plan =
        DeploymentPlanner::new(&mut model, &train, &eval, cost_cfg.clone()).plan().unwrap();
    let (mut model2, train2, eval2) = setup();
    let tcp_plan = DeploymentPlanner::new(&mut model2, &train2, &eval2, cost_cfg)
        .with_transport(TcpLoopbackTransport)
        .plan()
        .unwrap();
    let mem_best = mem_plan.best().unwrap();
    let tcp_best = tcp_plan.best().unwrap();
    assert_eq!(mem_best.boundary, tcp_best.boundary);
    assert_eq!(mem_best.backend, tcp_best.backend);
    // Traffic is transcript-determined, so the whole ranking agrees.
    assert_eq!(mem_plan.ranked, tcp_plan.ranked);
    assert_eq!(mem_plan.costs, tcp_plan.costs);
}
