//! Integration tests of the MPC substrate against plaintext execution:
//! random small networks must produce the same activations under both
//! engines, and the traffic profile must reflect the architecture.

use c2pi_suite::nn::layers::{AvgPool2d, Conv2d, Flatten, Linear, MaxPool2d, Relu};
use c2pi_suite::nn::Sequential;
use c2pi_suite::pi::engine::{run_prefix, specs_of, PiBackend, PiConfig};
use c2pi_tensor::Tensor;

fn assert_close(a: &Tensor, b: &Tensor, tol: f32) {
    assert_eq!(a.dims(), b.dims());
    for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
        assert!((x - y).abs() < tol, "{x} vs {y}");
    }
}

fn check_both_backends(seq: &mut Sequential, x: &Tensor, tol: f32) {
    let plain = seq.forward(x, false).unwrap();
    seq.clear_cache();
    for backend in [PiBackend::Cheetah, PiBackend::Delphi] {
        let cfg = PiConfig { backend, ..Default::default() };
        let outcome = run_prefix(&specs_of(seq), x, &cfg).unwrap();
        let secure = outcome.reconstruct(cfg.fixed).unwrap();
        assert_close(&plain, &secure, tol);
    }
}

#[test]
fn random_conv_stacks_agree_with_plaintext() {
    for seed in 0..3u64 {
        let mut seq = Sequential::new();
        seq.push(Conv2d::new(2, 3, 3, 1, 1, 1, seed));
        seq.push(Relu::new());
        seq.push(Conv2d::new(3, 2, 3, 1, 1, 1, seed + 10));
        seq.push(Relu::new());
        let x = Tensor::rand_uniform(&[1, 2, 8, 8], -1.0, 1.0, seed + 20);
        check_both_backends(&mut seq, &x, 0.02);
    }
}

#[test]
fn pooling_and_head_agree_with_plaintext() {
    let mut seq = Sequential::new();
    seq.push(Conv2d::new(1, 4, 3, 1, 1, 1, 1));
    seq.push(Relu::new());
    seq.push(MaxPool2d::new(2, 2));
    seq.push(Conv2d::new(4, 4, 3, 1, 1, 1, 2));
    seq.push(Relu::new());
    seq.push(AvgPool2d::new(2, 2));
    seq.push(Flatten::new());
    seq.push(Linear::new(4 * 2 * 2, 6, 3));
    let x = Tensor::rand_uniform(&[1, 1, 8, 8], -1.0, 1.0, 4);
    check_both_backends(&mut seq, &x, 0.05);
}

#[test]
fn strided_convolutions_agree_with_plaintext() {
    let mut seq = Sequential::new();
    seq.push(Conv2d::new(2, 4, 3, 2, 1, 1, 5));
    seq.push(Relu::new());
    let x = Tensor::rand_uniform(&[1, 2, 9, 9], -1.0, 1.0, 6);
    check_both_backends(&mut seq, &x, 0.02);
}

#[test]
fn traffic_scales_with_relu_count_not_just_layers() {
    // Two nets with the same conv cost but different ReLU surface: the
    // non-linear protocol should dominate the difference.
    let x = Tensor::rand_uniform(&[1, 2, 8, 8], -1.0, 1.0, 7);
    let cfg = PiConfig { backend: PiBackend::Delphi, ..Default::default() };
    let mut with_relu = Sequential::new();
    with_relu.push(Conv2d::new(2, 4, 3, 1, 1, 1, 8));
    with_relu.push(Relu::new());
    let mut without_relu = Sequential::new();
    without_relu.push(Conv2d::new(2, 4, 3, 1, 1, 1, 8));
    let a = run_prefix(&specs_of(&with_relu), &x, &cfg).unwrap();
    let b = run_prefix(&specs_of(&without_relu), &x, &cfg).unwrap();
    assert!(
        a.report.online.bytes_total() > 10 * b.report.online.bytes_total(),
        "relu {} vs linear-only {}",
        a.report.online.bytes_total(),
        b.report.online.bytes_total()
    );
}

#[test]
fn dealer_seed_changes_transcript_not_result() {
    let mut seq = Sequential::new();
    seq.push(Conv2d::new(1, 2, 3, 1, 1, 1, 9));
    seq.push(Relu::new());
    let x = Tensor::rand_uniform(&[1, 1, 6, 6], -1.0, 1.0, 10);
    let plain = seq.forward(&x, false).unwrap();
    seq.clear_cache();
    let mut shares_seen = Vec::new();
    for seed in [1u64, 2] {
        let cfg = PiConfig { dealer_seed: seed, ..Default::default() };
        let outcome = run_prefix(&specs_of(&seq), &x, &cfg).unwrap();
        let secure = outcome.reconstruct(cfg.fixed).unwrap();
        assert_close(&plain, &secure, 0.02);
        shares_seen.push(outcome.client_share.as_raw().to_vec());
    }
    // Different masks => different transcripts/shares, same plaintext.
    assert_ne!(shares_seen[0], shares_seen[1]);
}

#[test]
fn client_share_alone_reveals_nothing_obvious() {
    // Sanity privacy check: the client share of a constant activation is
    // not constant (it is uniformly masked).
    let mut seq = Sequential::new();
    seq.push(Conv2d::new(1, 2, 3, 1, 1, 1, 11));
    let x = Tensor::full(&[1, 1, 6, 6], 0.5);
    let cfg = PiConfig::default();
    let outcome = run_prefix(&specs_of(&seq), &x, &cfg).unwrap();
    let raw = outcome.server_share.as_raw();
    let distinct: std::collections::HashSet<&u64> = raw.iter().collect();
    assert!(distinct.len() > raw.len() / 2, "shares look non-uniform");
}
