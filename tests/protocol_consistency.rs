//! Integration tests of the MPC substrate against plaintext execution:
//! random small networks must produce the same activations under both
//! engines, and the traffic profile must reflect the architecture.

use c2pi_suite::core::session::C2pi;
use c2pi_suite::core::Split;
use c2pi_suite::nn::layers::{AvgPool2d, Conv2d, Flatten, Linear, MaxPool2d, Relu};
use c2pi_suite::nn::model::{alexnet, ZooConfig};
use c2pi_suite::nn::{BoundaryId, Sequential};
use c2pi_suite::pi::engine::{run_prefix, specs_of, PiBackend, PiConfig};
use c2pi_tensor::Tensor;

fn assert_close(a: &Tensor, b: &Tensor, tol: f32) {
    assert_eq!(a.dims(), b.dims());
    for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
        assert!((x - y).abs() < tol, "{x} vs {y}");
    }
}

fn check_both_backends(seq: &mut Sequential, x: &Tensor, tol: f32) {
    let plain = seq.forward(x, false).unwrap();
    seq.clear_cache();
    for backend in [PiBackend::Cheetah, PiBackend::Delphi] {
        let cfg = PiConfig { backend, ..Default::default() };
        let outcome = run_prefix(&specs_of(seq), x, &cfg).unwrap();
        let secure = outcome.reconstruct(cfg.fixed).unwrap();
        assert_close(&plain, &secure, tol);
    }
}

#[test]
fn random_conv_stacks_agree_with_plaintext() {
    for seed in 0..3u64 {
        let mut seq = Sequential::new();
        seq.push(Conv2d::new(2, 3, 3, 1, 1, 1, seed));
        seq.push(Relu::new());
        seq.push(Conv2d::new(3, 2, 3, 1, 1, 1, seed + 10));
        seq.push(Relu::new());
        let x = Tensor::rand_uniform(&[1, 2, 8, 8], -1.0, 1.0, seed + 20);
        check_both_backends(&mut seq, &x, 0.02);
    }
}

#[test]
fn pooling_and_head_agree_with_plaintext() {
    let mut seq = Sequential::new();
    seq.push(Conv2d::new(1, 4, 3, 1, 1, 1, 1));
    seq.push(Relu::new());
    seq.push(MaxPool2d::new(2, 2));
    seq.push(Conv2d::new(4, 4, 3, 1, 1, 1, 2));
    seq.push(Relu::new());
    seq.push(AvgPool2d::new(2, 2));
    seq.push(Flatten::new());
    seq.push(Linear::new(4 * 2 * 2, 6, 3));
    let x = Tensor::rand_uniform(&[1, 1, 8, 8], -1.0, 1.0, 4);
    check_both_backends(&mut seq, &x, 0.05);
}

#[test]
fn strided_convolutions_agree_with_plaintext() {
    let mut seq = Sequential::new();
    seq.push(Conv2d::new(2, 4, 3, 2, 1, 1, 5));
    seq.push(Relu::new());
    let x = Tensor::rand_uniform(&[1, 2, 9, 9], -1.0, 1.0, 6);
    check_both_backends(&mut seq, &x, 0.02);
}

#[test]
fn traffic_scales_with_relu_count_not_just_layers() {
    // Two nets with the same conv cost but different ReLU surface: the
    // non-linear protocol should dominate the difference.
    let x = Tensor::rand_uniform(&[1, 2, 8, 8], -1.0, 1.0, 7);
    let cfg = PiConfig { backend: PiBackend::Delphi, ..Default::default() };
    let mut with_relu = Sequential::new();
    with_relu.push(Conv2d::new(2, 4, 3, 1, 1, 1, 8));
    with_relu.push(Relu::new());
    let mut without_relu = Sequential::new();
    without_relu.push(Conv2d::new(2, 4, 3, 1, 1, 1, 8));
    let a = run_prefix(&specs_of(&with_relu), &x, &cfg).unwrap();
    let b = run_prefix(&specs_of(&without_relu), &x, &cfg).unwrap();
    assert!(
        a.report.online.bytes_total() > 10 * b.report.online.bytes_total(),
        "relu {} vs linear-only {}",
        a.report.online.bytes_total(),
        b.report.online.bytes_total()
    );
}

#[test]
fn dealer_seed_changes_transcript_not_result() {
    let mut seq = Sequential::new();
    seq.push(Conv2d::new(1, 2, 3, 1, 1, 1, 9));
    seq.push(Relu::new());
    let x = Tensor::rand_uniform(&[1, 1, 6, 6], -1.0, 1.0, 10);
    let plain = seq.forward(&x, false).unwrap();
    seq.clear_cache();
    let mut shares_seen = Vec::new();
    for seed in [1u64, 2] {
        let cfg = PiConfig { dealer_seed: seed, ..Default::default() };
        let outcome = run_prefix(&specs_of(&seq), &x, &cfg).unwrap();
        let secure = outcome.reconstruct(cfg.fixed).unwrap();
        assert_close(&plain, &secure, 0.02);
        shares_seen.push(outcome.client_share.as_raw().to_vec());
    }
    // Different masks => different transcripts/shares, same plaintext.
    assert_ne!(shares_seen[0], shares_seen[1]);
}

#[test]
fn delphi_and_cheetah_sessions_agree_on_the_same_batch() {
    // Backend parity: the two protocol suites are different crypto for
    // the same function, so on the same batch they must produce
    // identical predictions and logits within fixed-point tolerance —
    // with the boundary in the middle and at the very end.
    let model =
        alexnet(&ZooConfig { width_div: 32, seed: 3, image_size: 16, num_classes: 10 }).unwrap();
    let batch: Vec<Tensor> =
        (0..3).map(|s| Tensor::rand_uniform(&[1, 3, 16, 16], 0.0, 1.0, 40 + s)).collect();
    for split in [Split::At(BoundaryId::relu(3)), Split::Full] {
        let run = |backend: PiBackend| {
            let mut session = C2pi::builder(model.clone())
                .split(split)
                .noise(0.0)
                .backend(backend)
                .build()
                .unwrap();
            session.preprocess(batch.len()).unwrap();
            session.infer_batch(&batch).unwrap()
        };
        let delphi = run(PiBackend::Delphi);
        let cheetah = run(PiBackend::Cheetah);
        for (i, (d, c)) in delphi.iter().zip(cheetah.iter()).enumerate() {
            assert_eq!(
                d.prediction, c.prediction,
                "split {split:?}, image {i}: predictions diverge"
            );
            for (a, b) in d.logits.as_slice().iter().zip(c.logits.as_slice()) {
                assert!((a - b).abs() < 0.05, "split {split:?}, image {i}: logits {a} vs {b}");
            }
        }
    }
}

#[test]
fn offline_garbled_relu_is_bit_identical_to_the_lockstep_gc_path() {
    // The offline-garbling refactor moved Delphi's garbling, tables and
    // label transfer into preprocessing; the *function* computed online
    // must be exactly the one the pre-refactor lockstep protocol
    // (`gc_relu_garbler`/`gc_relu_evaluator`, garbling online with OT)
    // computes. ReLU over the ring is exact, so the reconstructed
    // outputs must agree bit for bit on every input, including the
    // negative/zero boundary.
    use c2pi_suite::mpc::dealer::Dealer;
    use c2pi_suite::mpc::gcpre::{pre_gc_evaluator, pre_gc_garbler, pregarble, MaskedOp};
    use c2pi_suite::mpc::ot::KAPPA;
    use c2pi_suite::mpc::prg::Prg;
    use c2pi_suite::mpc::relu::{gc_relu_evaluator, gc_relu_garbler};
    use c2pi_suite::mpc::share::{reconstruct, share_secret};
    use c2pi_suite::transport::channel_pair;

    let fp = c2pi_suite::mpc::FixedPoint::default();
    let values = [-7.5f32, -1.0, -0.001, 0.0, 0.001, 0.25, 3.0, 100.0];
    let secret: Vec<u64> = values.iter().map(|&v| fp.encode(v)).collect();
    let mut prg = Prg::from_u64(901);
    let (x0, x1) = share_secret(&secret, &mut prg);

    // Pre-refactor lockstep path: garble + transfer + OT online.
    let mut dealer = Dealer::new(902);
    let (snd_base, rcv_base) = dealer.base_ots(KAPPA);
    let (client, server, _) = channel_pair();
    let x1_lockstep = x1.clone();
    let t = std::thread::spawn(move || {
        let mut gprg = Prg::from_u64(903);
        gc_relu_garbler(&server, &x1_lockstep, &snd_base, &mut gprg).unwrap()
    });
    let y0 = gc_relu_evaluator(&client, &x0, &rcv_base).unwrap();
    let y1 = t.join().unwrap();
    let lockstep = reconstruct(&y0, &y1);

    // Offline-garbled path: one δ/label round trip online.
    let mut gprg = Prg::from_u64(904);
    let (cmat, smat) = pregarble(MaskedOp::Relu, values.len(), &mut gprg, 4);
    let (client, server, counter) = channel_pair();
    let t = std::thread::spawn(move || pre_gc_garbler(&server, &smat, &x1).unwrap());
    let y0 = pre_gc_evaluator(&client, &cmat, &x0, 4).unwrap();
    let y1 = t.join().unwrap();
    let offline = reconstruct(&y0, &y1);

    assert_eq!(lockstep, offline, "offline-garbled ReLU diverges from the lockstep path");
    // And the online phase is exactly one round trip.
    assert_eq!(counter.snapshot().flights, 2);
}

#[test]
fn offline_garbled_maxpool_is_bit_identical_to_the_lockstep_gc_path() {
    use c2pi_suite::mpc::dealer::Dealer;
    use c2pi_suite::mpc::gcpre::{pre_gc_evaluator, pre_gc_garbler, pregarble, MaskedOp};
    use c2pi_suite::mpc::ot::KAPPA;
    use c2pi_suite::mpc::prg::Prg;
    use c2pi_suite::mpc::relu::{gc_maxpool4_evaluator, gc_maxpool4_garbler};
    use c2pi_suite::mpc::share::{reconstruct, share_secret};
    use c2pi_suite::transport::channel_pair;

    let fp = c2pi_suite::mpc::FixedPoint::default();
    // Three windows of four values each.
    let values = vec![1.0f32, -2.0, 0.5, 0.75, -1.0, -2.0, -3.0, -0.25, 4.0, 4.0, -4.0, 0.0];
    let secret: Vec<u64> = values.iter().map(|&v| fp.encode(v)).collect();
    let mut prg = Prg::from_u64(911);
    let (x0, x1) = share_secret(&secret, &mut prg);

    let mut dealer = Dealer::new(912);
    let (snd_base, rcv_base) = dealer.base_ots(KAPPA);
    let (client, server, _) = channel_pair();
    let x1_lockstep = x1.clone();
    let t = std::thread::spawn(move || {
        let mut gprg = Prg::from_u64(913);
        gc_maxpool4_garbler(&server, &x1_lockstep, &snd_base, &mut gprg).unwrap()
    });
    let y0 = gc_maxpool4_evaluator(&client, &x0, &rcv_base).unwrap();
    let y1 = t.join().unwrap();
    let lockstep = reconstruct(&y0, &y1);

    let mut gprg = Prg::from_u64(914);
    let (cmat, smat) = pregarble(MaskedOp::Maxpool4, values.len() / 4, &mut gprg, 2);
    let (client, server, counter) = channel_pair();
    let t = std::thread::spawn(move || pre_gc_garbler(&server, &smat, &x1).unwrap());
    let y0 = pre_gc_evaluator(&client, &cmat, &x0, 2).unwrap();
    let y1 = t.join().unwrap();
    let offline = reconstruct(&y0, &y1);

    assert_eq!(lockstep, offline, "offline-garbled maxpool diverges from the lockstep path");
    assert_eq!(counter.snapshot().flights, 2);
}

#[test]
fn delphi_online_flights_are_layer_batched() {
    // One δ/label round trip per non-linear layer — and since the δ
    // frame travels in the same direction as the client's preceding
    // linear-layer messages, it merges into that flight: a conv+relu
    // prefix costs exactly ONE extra online flight (the label
    // response) over the linear-only prefix, no matter how many
    // elements the layer holds (before the refactor a single ReLU
    // layer cost five frames per gc_chunk).
    let x = Tensor::rand_uniform(&[1, 2, 8, 8], -1.0, 1.0, 77);
    let cfg = PiConfig { backend: PiBackend::Delphi, ..Default::default() };
    let mut with_relu = Sequential::new();
    with_relu.push(Conv2d::new(2, 4, 3, 1, 1, 1, 78));
    with_relu.push(Relu::new());
    let mut without_relu = Sequential::new();
    without_relu.push(Conv2d::new(2, 4, 3, 1, 1, 1, 78));
    let a = run_prefix(&specs_of(&with_relu), &x, &cfg).unwrap();
    let b = run_prefix(&specs_of(&without_relu), &x, &cfg).unwrap();
    assert_eq!(
        a.report.online.flights,
        b.report.online.flights + 1,
        "relu layer should cost exactly one extra online flight"
    );
}

#[test]
fn client_share_alone_reveals_nothing_obvious() {
    // Sanity privacy check: the client share of a constant activation is
    // not constant (it is uniformly masked).
    let mut seq = Sequential::new();
    seq.push(Conv2d::new(1, 2, 3, 1, 1, 1, 11));
    let x = Tensor::full(&[1, 1, 6, 6], 0.5);
    let cfg = PiConfig::default();
    let outcome = run_prefix(&specs_of(&seq), &x, &cfg).unwrap();
    let raw = outcome.server_share.as_raw();
    let distinct: std::collections::HashSet<&u64> = raw.iter().collect();
    assert!(distinct.len() > raw.len() / 2, "shares look non-uniform");
}
