//! Quickstart: train a small model on the synthetic CIFAR substitute,
//! compile a C2PI serving session with the builder API, preprocess
//! offline, and serve a batch online — comparing cost and correctness
//! against full PI.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use c2pi_suite::core::pipeline::plain_prediction;
use c2pi_suite::core::session::C2pi;
use c2pi_suite::data::synth::{SynthConfig, SynthDataset};
use c2pi_suite::nn::model::{alexnet, ZooConfig};
use c2pi_suite::nn::train::{evaluate_accuracy, train_classifier, TrainConfig};
use c2pi_suite::nn::BoundaryId;
use c2pi_suite::pi::cheetah;
use c2pi_suite::transport::NetModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Data: a synthetic, class-structured CIFAR-10 stand-in.
    let data =
        SynthDataset::generate(&SynthConfig { classes: 4, per_class: 8, ..Default::default() })
            .into_dataset();

    // 2. Model: a width-reduced AlexNet variant, trained briefly.
    let mut model = alexnet(&ZooConfig { width_div: 32, ..Default::default() })?;
    println!("training a {}-conv AlexNet variant...", model.num_convs());
    train_classifier(
        model.seq_mut(),
        data.images(),
        data.labels(),
        &TrainConfig { epochs: 15, batch_size: 8, lr: 0.02, momentum: 0.9, seed: 1 },
    )?;
    let acc = evaluate_accuracy(model.seq_mut(), data.images(), data.labels())?;
    println!("train accuracy: {:.0}%\n", acc * 100.0);

    // 3. Compile a C2PI serving session: crypto layers up to conv 3's
    //    ReLU run under the Cheetah-style engine, then the client
    //    reveals a noised share and the server finishes alone.
    let mut session = C2pi::builder(model.clone())
        .split_at(BoundaryId::relu(3))
        .noise(0.1)
        .noise_seed(2)
        .backend(cheetah())
        .build()?;
    println!(
        "session: {} crypto layers / {} clear layers, backend {}",
        session.crypto_layer_count(),
        session.clear_layer_count(),
        session.backend_name()
    );

    // 4. Offline phase (input-independent): correlated randomness for a
    //    batch of four future inferences, generated before traffic
    //    arrives.
    let batch: Vec<_> = data.images().iter().take(4).cloned().collect();
    session.preprocess(batch.len())?;
    println!("preprocessed material for {} inferences", session.ledger().available);

    // 5. Online phase: serve the batch. Every report carries the
    //    consumed-vs-generated ledger, so we can verify no dealer work
    //    ran on the critical path.
    let results = session.infer_batch(&batch)?;
    for (x, res) in batch.iter().zip(&results) {
        let expected = plain_prediction(&model, x)?;
        println!(
            "C2PI  prediction: {} (plaintext: {expected}) — online {:.1} ms, {:.2} MB",
            res.prediction,
            res.report.online_seconds * 1e3,
            res.report.comm_mb()
        );
    }
    let ledger = session.ledger();
    println!(
        "ledger: {} offline / {} inline generated, {} consumed\n",
        ledger.generated_offline, ledger.generated_inline, ledger.consumed
    );

    // 6. The full-PI baseline for comparison.
    let mut full = C2pi::builder(model).full_pi().backend(cheetah()).build()?;
    full.preprocess(1)?;
    let full_res = full.infer(&batch[0])?;
    let res = &results[0];
    println!(
        "C2PI  cost: {:.2} MB, LAN {:.3} s, WAN {:.3} s",
        res.report.comm_mb(),
        res.report.latency_seconds(&NetModel::lan()),
        res.report.latency_seconds(&NetModel::wan())
    );
    println!(
        "full  cost: {:.2} MB, LAN {:.3} s, WAN {:.3} s",
        full_res.report.comm_mb(),
        full_res.report.latency_seconds(&NetModel::lan()),
        full_res.report.latency_seconds(&NetModel::wan())
    );
    println!(
        "\nC2PI saves {:.1}x communication on this model/boundary.",
        full_res.report.comm_mb() / res.report.comm_mb()
    );
    Ok(())
}
