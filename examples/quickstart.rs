//! Quickstart: train a small model on the synthetic CIFAR substitute,
//! split it at a boundary layer, and run one crypto-clear private
//! inference — comparing cost and correctness against full PI.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use c2pi_suite::core::pipeline::{plain_prediction, C2piPipeline, PipelineConfig};
use c2pi_suite::data::synth::{SynthConfig, SynthDataset};
use c2pi_suite::nn::model::{alexnet, ZooConfig};
use c2pi_suite::nn::train::{evaluate_accuracy, train_classifier, TrainConfig};
use c2pi_suite::nn::BoundaryId;
use c2pi_suite::pi::engine::{PiBackend, PiConfig};
use c2pi_suite::transport::NetModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Data: a synthetic, class-structured CIFAR-10 stand-in.
    let data = SynthDataset::generate(&SynthConfig {
        classes: 4,
        per_class: 8,
        ..Default::default()
    })
    .into_dataset();

    // 2. Model: a width-reduced AlexNet variant, trained briefly.
    let mut model = alexnet(&ZooConfig { width_div: 32, ..Default::default() })?;
    println!("training a {}-conv AlexNet variant...", model.num_convs());
    train_classifier(
        model.seq_mut(),
        data.images(),
        data.labels(),
        &TrainConfig { epochs: 15, batch_size: 8, lr: 0.02, momentum: 0.9, seed: 1 },
    )?;
    let acc = evaluate_accuracy(model.seq_mut(), data.images(), data.labels())?;
    println!("train accuracy: {:.0}%\n", acc * 100.0);

    // 3. One inference under C2PI: crypto layers up to conv 3's ReLU run
    //    under the Cheetah-style engine, then the client reveals a noised
    //    share and the server finishes alone.
    let x = &data.images()[0];
    let expected = plain_prediction(&mut model.clone(), x)?;
    let cfg = PipelineConfig {
        pi: PiConfig { backend: PiBackend::Cheetah, ..Default::default() },
        noise: 0.1,
        noise_seed: 2,
    };
    let mut c2pi = C2piPipeline::new(model.clone(), BoundaryId::relu(3), cfg)?;
    let res = c2pi.infer(x)?;
    println!(
        "C2PI  prediction: {} (plaintext: {expected}) — {} crypto layers, {} clear layers",
        res.prediction,
        c2pi.crypto_layer_count(),
        c2pi.clear_layer_count()
    );
    println!(
        "C2PI  cost: {:.2} MB, LAN {:.3} s, WAN {:.3} s",
        res.report.comm_mb(),
        res.report.latency_seconds(&NetModel::lan()),
        res.report.latency_seconds(&NetModel::wan())
    );

    // 4. The full-PI baseline for comparison.
    let mut full = C2piPipeline::full_pi(model, cfg);
    let full_res = full.infer(x)?;
    println!(
        "full  cost: {:.2} MB, LAN {:.3} s, WAN {:.3} s",
        full_res.report.comm_mb(),
        full_res.report.latency_seconds(&NetModel::lan()),
        full_res.report.latency_seconds(&NetModel::wan())
    );
    println!(
        "\nC2PI saves {:.1}x communication on this model/boundary.",
        full_res.report.comm_mb() / res.report.comm_mb()
    );
    Ok(())
}
