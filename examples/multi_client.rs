//! Multi-client load generator: drives N concurrent clients against a
//! reactor `pi_server`, verifying every answer against the clear model.
//!
//! ```text
//! # against a live server (see the pi_server example / ci/smoke.sh):
//! cargo run --release --example multi_client -- --addr 127.0.0.1:PORT --clients 4 --iters 2
//! # self-contained: spawns an in-process server on an ephemeral port
//! cargo run --release --example multi_client -- --clients 4 --iters 2
//! ```
//!
//! Each client thread runs `--iters` sequential inferences over its own
//! connection-per-request [`ReactorClient`]. A `BUSY` backpressure frame
//! is retried up to `--retries` times, sleeping the server-suggested
//! backoff between attempts — against a deliberately starved pool
//! (`pi_server --preprocess-delay-ms`) this is the shed-and-retry path
//! the smoke harness pins down. Every reconstructed logit vector is
//! compared elementwise against the clear model's forward pass, and the
//! argmax prediction must match whenever the clear top-2 gap is larger
//! than the fixed-point tolerance. Exits non-zero on any mismatch or
//! transport failure, so CI can use it as the serving smoke test.
//! Prints aggregate online throughput at the end; with `--stats` it also
//! fetches and prints the server's Prometheus-style metrics exposition.
//!
//! For the batching smoke, `--fixed-seed S` makes every inference send
//! the same input and `--dump-bits FILE` records each reconstruction's
//! logit bit patterns as one hex line per inference — sorted dumps from
//! a batched and an unbatched server (one worker, one shard, so the
//! material stream is consumed in order either way) must be identical.

#[path = "two_party/common.rs"]
mod common;

use c2pi_suite::core::reactor::{ReactorClient, ReactorConfig, ReactorServer};
use c2pi_suite::tensor::Tensor;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Elementwise tolerance between fixed-point and clear logits.
const TOL: f32 = 0.05;
/// Clear top-2 gap above which the argmax must agree exactly.
const GAP: f32 = 3.0 * TOL;

struct Opts {
    addr: Option<String>,
    backend: c2pi_suite::pi::PiBackend,
    clients: usize,
    iters: usize,
    retries: usize,
    stats: bool,
    /// One input for every inference (instead of per-(client, iter)
    /// seeds) — the shape the batching smoke needs to compare runs.
    fixed_seed: Option<u64>,
    /// Append one hex line of logit bit patterns per inference, for
    /// bit-exact (multiset) comparison across server configurations.
    dump_bits: Option<String>,
}

fn parse_opts() -> Opts {
    let mut opts = Opts {
        addr: None,
        backend: c2pi_suite::pi::PiBackend::Cheetah,
        clients: 4,
        iters: 2,
        retries: 8,
        stats: false,
        fixed_seed: None,
        dump_bits: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| panic!("missing value"));
        match flag.as_str() {
            "--addr" => opts.addr = Some(val()),
            "--backend" => opts.backend = common::parse_backend(&val()),
            "--clients" => opts.clients = val().parse().expect("--clients takes a count"),
            "--iters" => opts.iters = val().parse().expect("--iters takes a count"),
            "--retries" => opts.retries = val().parse().expect("--retries takes a count"),
            "--stats" => opts.stats = true,
            "--fixed-seed" => {
                opts.fixed_seed = Some(val().parse().expect("--fixed-seed takes a seed"));
            }
            "--dump-bits" => opts.dump_bits = Some(val()),
            other => panic!("unknown flag {other:?}"),
        }
    }
    opts
}

/// Top-2 gap of a logit slice.
fn top2_gap(logits: &[f32]) -> f32 {
    let mut best = f32::NEG_INFINITY;
    let mut second = f32::NEG_INFINITY;
    for &v in logits {
        if v > best {
            second = best;
            best = v;
        } else if v > second {
            second = v;
        }
    }
    best - second
}

fn main() {
    let opts = parse_opts();
    let model = common::demo_model();
    // In-process fallback server so the example is self-contained.
    let inprocess = if opts.addr.is_none() {
        let session = common::build_session(opts.backend).into_shared();
        let cfg = ReactorConfig {
            workers: opts.clients.max(1),
            pool_low: 2,
            pool_high: 8,
            ..Default::default()
        };
        let server = ReactorServer::bind(Arc::clone(session.core()), "127.0.0.1:0", cfg)
            .expect("bind in-process server");
        server.preprocess(opts.clients).expect("initial offline phase");
        Some(server)
    } else {
        None
    };
    let addr: std::net::SocketAddr = match (&opts.addr, &inprocess) {
        // Resolve via ToSocketAddrs so hostnames work, not just IPs.
        (Some(a), _) => std::net::ToSocketAddrs::to_socket_addrs(&a.as_str())
            .ok()
            .and_then(|mut addrs| addrs.next())
            .unwrap_or_else(|| panic!("--addr {a:?} does not resolve to host:port")),
        (None, Some(server)) => server.local_addr(),
        (None, None) => unreachable!(),
    };
    println!(
        "[multi_client] {} clients x {} inferences against {addr} ({} backend, {} retries)",
        opts.clients,
        opts.iters,
        opts.backend.name(),
        opts.retries
    );

    let total = opts.clients * opts.iters;
    let start = Instant::now();
    let (failures, bit_lines): (usize, Vec<String>) = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..opts.clients)
            .map(|t| {
                let model = &model;
                let backend = opts.backend;
                let iters = opts.iters;
                let retries = opts.retries;
                let fixed_seed = opts.fixed_seed;
                let dump = opts.dump_bits.is_some();
                scope.spawn(move || {
                    let client = ReactorClient::new(common::build_session(backend).into_shared())
                        .with_connect_timeout(Duration::from_secs(30))
                        .with_retries(retries);
                    let [c, h, w] = common::INPUT_CHW;
                    let mut failures = 0usize;
                    let mut lines = Vec::new();
                    for i in 0..iters {
                        let seed = fixed_seed.unwrap_or((1000 * t + i) as u64);
                        let x = Tensor::rand_uniform(&[1, c, h, w], 0.0, 1.0, seed);
                        let clear = match model.seq().forward_eval(&x) {
                            Ok(y) => y,
                            Err(e) => {
                                eprintln!("[client {t}] clear model failed: {e}");
                                failures += 1;
                                continue;
                            }
                        };
                        match client.infer(addr, &x) {
                            Ok(got) => {
                                if dump {
                                    lines.push(
                                        got.logits
                                            .as_slice()
                                            .iter()
                                            .map(|v| format!("{:08x}", v.to_bits()))
                                            .collect::<Vec<_>>()
                                            .join(" "),
                                    );
                                }
                                let max_diff = got
                                    .logits
                                    .as_slice()
                                    .iter()
                                    .zip(clear.as_slice())
                                    .map(|(a, b)| (a - b).abs())
                                    .fold(0.0f32, f32::max);
                                let clear_pred = clear.argmax().unwrap_or(0);
                                let decisive = top2_gap(clear.as_slice()) > GAP;
                                if max_diff > TOL || (decisive && got.prediction != clear_pred) {
                                    eprintln!(
                                        "[client {t}] MISMATCH on inference {i}: \
                                         max |diff| {max_diff:.4}, prediction {} vs clear {}",
                                        got.prediction, clear_pred
                                    );
                                    failures += 1;
                                }
                            }
                            Err(e) => {
                                eprintln!("[client {t}] inference {i} failed: {e}");
                                failures += 1;
                            }
                        }
                    }
                    (failures, lines)
                })
            })
            .collect();
        let mut failures = 0usize;
        let mut bit_lines = Vec::new();
        for h in handles {
            let (f, lines) = h.join().expect("client thread");
            failures += f;
            bit_lines.extend(lines);
        }
        (failures, bit_lines)
    });
    if let Some(path) = &opts.dump_bits {
        let mut text: String = bit_lines.join("\n");
        text.push('\n');
        std::fs::write(path, text).expect("write --dump-bits file");
    }
    let elapsed = start.elapsed().as_secs_f64();
    println!(
        "[multi_client] {} / {total} correct in {elapsed:.2}s — {:.2} inferences/s aggregate",
        total - failures,
        total as f64 / elapsed
    );
    if opts.stats {
        // Fetch before tearing the in-process server down; against a
        // --serve-n server this races its graceful drain, so treat a
        // refused stats connection as informational, not fatal.
        let client = ReactorClient::new(common::build_session(opts.backend).into_shared())
            .with_connect_timeout(Duration::from_secs(5));
        match client.stats(addr) {
            Ok(text) => print!("{text}"),
            Err(e) => eprintln!("[multi_client] stats fetch failed: {e}"),
        }
    }
    if let Some(server) = inprocess {
        let ledger = server.pool().ledger();
        println!(
            "[multi_client] server ledger: {} offline + {} inline = {} consumed + {} pooled",
            ledger.generated_offline, ledger.generated_inline, ledger.consumed, ledger.available
        );
        server.drain().expect("graceful drain");
    }
    if failures > 0 {
        eprintln!("[multi_client] FAILED — {failures} of {total} inferences wrong");
        std::process::exit(1);
    }
    println!("[multi_client] OK — every prediction matches the clear model");
}
