//! Two-process demo, server side: holds the model, serves one private
//! inference over a framed TCP connection, then reveals its share of
//! the result to the client.
//!
//! ```text
//! cargo run --release --example two_party_server -- --backend cheetah --addr 127.0.0.1:7878
//! ```
//!
//! Run the matching `two_party_client` in a second terminal (or see the
//! CI smoke step in `.github/workflows/ci.yml`).

#[path = "common.rs"]
mod common;

use c2pi_suite::transport::{Channel, Side, TcpListenerTransport};

fn main() {
    let args = common::parse_args();
    let mut session = common::build_session(args.backend);
    // Bind first (port 0 gets an ephemeral port), *then* announce the
    // real address — supervisors wait for the line instead of sleeping
    // and hoping.
    let listener = TcpListenerTransport::bind(&args.addr[..]).expect("bind");
    println!(
        "[server] backend {} — listening on {} for one inference",
        session.backend_name(),
        listener.local_addr()
    );
    common::announce_listening(listener.local_addr());
    let ch = listener.accept(Side::Server).expect("accept");
    let outcome = session.infer_server(&ch).expect("server party run");
    // Full-PI reveal: the server sends its share; only the client learns
    // the prediction.
    ch.send_u64s(outcome.share.as_raw()).expect("reveal share");
    let traffic = ch.counter().snapshot();
    println!(
        "[server] done — {:.3} MB online traffic, {} round trips, {:.1} ms",
        traffic.megabytes(),
        traffic.round_trips(),
        outcome.report.online_seconds * 1e3,
    );
}
