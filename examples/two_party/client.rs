//! Two-process demo, client side: holds the input, connects to the
//! server over framed TCP, runs its party of the protocol, reconstructs
//! the prediction from the revealed share — and verifies the result is
//! **bit-identical** to the single-process in-memory path (exits
//! non-zero otherwise, so CI can use this as a smoke test).
//!
//! ```text
//! cargo run --release --example two_party_client -- --backend cheetah --addr 127.0.0.1:7878
//! ```

#[path = "common.rs"]
mod common;

use c2pi_suite::mpc::share::{reconstruct, ShareVec};
use c2pi_suite::tensor::Tensor;
use c2pi_suite::transport::{Channel, Side, TcpChannel};
use std::time::Duration;

fn main() {
    let args = common::parse_args();
    let mut session = common::build_session(args.backend);
    let fp = session.config().fixed;
    let [c, h, w] = common::INPUT_CHW;
    let x = Tensor::rand_uniform(&[1, c, h, w], 0.0, 1.0, 1);

    println!("[client] backend {} — connecting to {}", session.backend_name(), args.addr);
    let ch = TcpChannel::connect_retry(&args.addr[..], Side::Client, Duration::from_secs(10))
        .expect("connect to server");
    let outcome = session.infer_client(&ch, &x).expect("client party run");
    let server_share = ShareVec::from_raw(ch.recv_u64s().expect("revealed share"));
    let raw = reconstruct(&outcome.share, &server_share);
    let logits = fp.decode_tensor(&raw, &outcome.dims).expect("decode logits");
    let prediction = logits.argmax().unwrap_or(0);
    let traffic = ch.counter().snapshot();
    println!(
        "[client] prediction {prediction} — {:.3} MB online traffic, {} round trips, {:.1} ms",
        traffic.megabytes(),
        traffic.round_trips(),
        outcome.report.online_seconds * 1e3,
    );

    // Reference: the same deployment with both parties in this process
    // over the in-memory transport. Same seeds, same dealer, same
    // transcript — the logits must match bit for bit.
    let mut reference = common::build_session(args.backend);
    let ref_outcome = reference.infer(&x).expect("in-memory reference run");
    let ref_logits = ref_outcome.reconstruct(fp).expect("reference logits");
    let ref_prediction = ref_logits.argmax().unwrap_or(0);
    let identical = logits
        .as_slice()
        .iter()
        .zip(ref_logits.as_slice())
        .all(|(a, b)| a.to_bits() == b.to_bits());
    if identical && prediction == ref_prediction {
        println!("[client] OK — TCP path is bit-identical to the in-memory path");
    } else {
        eprintln!(
            "[client] MISMATCH — tcp prediction {prediction} vs mem {ref_prediction}; \
             logits identical: {identical}"
        );
        std::process::exit(1);
    }
}
