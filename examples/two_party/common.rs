//! Shared setup for the two-process demo binaries (also reused by the
//! `pi_server` / `multi_client` serving demos, which is why some items
//! are dead code in any single binary).
//!
//! Client and server must compile the *same* session: identical model
//! (the zoo constructors are seed-deterministic), identical
//! [`PiConfig`] and identical dealer seed, so the deterministic dealer
//! stands in for the trusted third party and both processes draw
//! matching halves of the correlated randomness.
#![allow(dead_code)]

use c2pi_suite::nn::model::{alexnet, Model, ZooConfig};
use c2pi_suite::pi::engine::specs_of;
use c2pi_suite::pi::{PiBackend, PiConfig, PiSession};

/// Loopback address both binaries default to.
pub const DEFAULT_ADDR: &str = "127.0.0.1:7878";

/// Input shape of the demo model.
pub const INPUT_CHW: [usize; 3] = [3, 16, 16];

/// Command-line options shared by both binaries.
pub struct Args {
    /// Address the server binds / the client connects to.
    pub addr: String,
    /// Protocol backend both parties run.
    pub backend: PiBackend,
}

/// Parses `--addr <host:port>` and `--backend <cheetah|delphi>`.
pub fn parse_args() -> Args {
    let mut args = Args { addr: DEFAULT_ADDR.to_string(), backend: PiBackend::Cheetah };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--addr" => args.addr = it.next().expect("--addr needs a value"),
            "--backend" => {
                args.backend = parse_backend(&it.next().expect("--backend needs a value"))
            }
            other => panic!("unknown flag {other:?}"),
        }
    }
    args
}

/// Parses a backend name.
pub fn parse_backend(name: &str) -> PiBackend {
    match name {
        "cheetah" => PiBackend::Cheetah,
        "delphi" => PiBackend::Delphi,
        other => panic!("unknown backend {other:?} (use cheetah or delphi)"),
    }
}

/// Prints the machine-readable listening line the CI smoke script (and
/// any other process supervisor) greps for to learn an ephemeral port.
pub fn announce_listening(addr: impl std::fmt::Display) {
    use std::io::Write;
    println!("C2PI_LISTENING {addr}");
    std::io::stdout().flush().expect("stdout flush");
}

/// The demo model: a narrow AlexNet on 16×16 inputs, deterministic from
/// its seed so both processes hold identical weights.
pub fn demo_model() -> Model {
    alexnet(&ZooConfig { width_div: 32, seed: 3, image_size: 16, ..Default::default() })
        .expect("demo model builds")
}

/// Compiles the full-PI session both parties run.
pub fn build_session(backend: PiBackend) -> PiSession {
    let model = demo_model();
    let cfg = PiConfig { backend, ..Default::default() };
    PiSession::new(&specs_of(model.seq()), INPUT_CHW, cfg).expect("demo prefix compiles")
}
