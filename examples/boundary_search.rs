//! Runs Algorithm 1 end to end: DINA sweeps the model from the tail,
//! finds the first layer where recovery succeeds, then the accuracy
//! check finalises the crypto-clear boundary.
//!
//! ```text
//! cargo run --release --example boundary_search
//! ```

use c2pi_suite::attacks::dina::{Dina, DinaConfig};
use c2pi_suite::core::boundary::{search_boundary, BoundaryConfig};
use c2pi_suite::data::synth::{SynthConfig, SynthDataset};
use c2pi_suite::nn::model::{alexnet, ZooConfig};
use c2pi_suite::nn::train::{train_classifier, TrainConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let data =
        SynthDataset::generate(&SynthConfig { classes: 4, per_class: 6, ..Default::default() })
            .into_dataset();
    let (train, eval) = data.split(0.7, 3)?;

    let mut model = alexnet(&ZooConfig { width_div: 32, num_classes: 4, ..Default::default() })?;
    println!("training the target model...");
    train_classifier(
        model.seq_mut(),
        train.images(),
        train.labels(),
        &TrainConfig { epochs: 20, batch_size: 8, lr: 0.02, momentum: 0.9, seed: 1 },
    )?;

    println!("running Algorithm 1 with DINA (sigma=0.3, lambda=0.1, delta=2.5%)...\n");
    let mut dina = Dina::new(DinaConfig { epochs: 15, ..Default::default() });
    let trace = search_boundary(
        &mut model,
        &mut dina,
        &train,
        &eval,
        &[],
        &BoundaryConfig { eval_images: 3, ..Default::default() },
    )?;

    println!("phase 1 (tail-to-head DINA probes):");
    for p in &trace.ssim_probes {
        println!("  layer {:>4}: avg SSIM {:.3}", p.id.to_string(), p.avg_ssim);
    }
    println!(
        "\nphase 2 (noised accuracy checks, baseline {:.1}%):",
        trace.baseline_accuracy * 100.0
    );
    for p in &trace.accuracy_probes {
        println!("  layer {:>4}: accuracy {:.1}%", p.id.to_string(), p.accuracy * 100.0);
    }
    println!(
        "\nboundary: layer {} (noised accuracy {:.1}%)",
        trace.boundary,
        trace.boundary_accuracy * 100.0
    );
    println!("layers after {} can run in the clear on the server.", trace.boundary);
    Ok(())
}
