//! Runs the boundary audit end to end on the deployment-planner API:
//! a DINA probe sweeps the model from the tail, finds the first layer
//! where recovery fails, then the defended-accuracy gate finalises the
//! crypto-clear boundary (Algorithm 1, generalised).
//!
//! ```text
//! cargo run --release --example boundary_search
//! ```
//!
//! For the full planner — probe panels, backend/network cost ranking,
//! serving-ready plans — see `examples/plan_report.rs`.

use c2pi_suite::attacks::probe::{ProbeKind, ProbeSpec};
use c2pi_suite::core::planner::{DeploymentPlanner, PlannerConfig};
use c2pi_suite::data::synth::{SynthConfig, SynthDataset};
use c2pi_suite::nn::model::{alexnet, ZooConfig};
use c2pi_suite::nn::train::{train_classifier, TrainConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let data =
        SynthDataset::generate(&SynthConfig { classes: 4, per_class: 6, ..Default::default() })
            .into_dataset();
    let (train, eval) = data.split(0.7, 3)?;

    let mut model = alexnet(&ZooConfig { width_div: 32, num_classes: 4, ..Default::default() })?;
    println!("training the target model...");
    train_classifier(
        model.seq_mut(),
        train.images(),
        train.labels(),
        &TrainConfig { epochs: 20, batch_size: 8, lr: 0.02, momentum: 0.9, seed: 1 },
    )?;

    println!("running the boundary audit with DINA (sigma=0.3, lambda=0.1, delta=2.5%)...\n");
    let cfg = PlannerConfig {
        probes: vec![ProbeSpec { kind: ProbeKind::Dina, budget: 15, seed: 29 }],
        eval_images: 3,
        ..Default::default()
    };
    let mut planner = DeploymentPlanner::new(&mut model, &train, &eval, cfg);
    let plan = planner.plan()?;

    println!("privacy audit (worst probe SSIM per candidate):");
    for audit in &plan.audits {
        for probe in &audit.probes {
            println!(
                "  layer {:>4}: {} avg SSIM {:.3}",
                audit.boundary.to_string(),
                probe.probe,
                probe.avg_ssim
            );
        }
    }
    println!("\naccuracy gate (baseline {:.1}%):", plan.baseline_accuracy * 100.0);
    for audit in plan.audits.iter().filter(|a| a.private) {
        if let Some(acc) = audit.defended_accuracy {
            println!("  layer {:>4}: accuracy {:.1}%", audit.boundary.to_string(), acc * 100.0);
        }
    }
    let best = plan.best().ok_or("no allowed deployment")?;
    println!(
        "\nboundary: layer {} (defended accuracy {:.1}%, defense {})",
        best.boundary,
        best.defended_accuracy * 100.0,
        best.defense.label()
    );
    println!("layers after {} can run in the clear on the server.", best.boundary);
    Ok(())
}
