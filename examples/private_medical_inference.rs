//! Scenario from the paper's introduction: a patient (client) holds a
//! sensitive image; a hospital system (server) holds a proprietary
//! diagnostic model. C2PI runs the first layers under MPC, then the
//! server finishes alone — and we *verify* the privacy claim by letting
//! the curious server attack the revealed activation with DINA.
//!
//! ```text
//! cargo run --release --example private_medical_inference
//! ```

use c2pi_suite::attacks::dina::{Dina, DinaConfig};
use c2pi_suite::attacks::Idpa;
use c2pi_suite::core::session::C2pi;
use c2pi_suite::data::metrics::ssim;
use c2pi_suite::data::synth::{SynthConfig, SynthDataset};
use c2pi_suite::nn::model::{vgg16, ZooConfig};
use c2pi_suite::nn::train::{train_classifier, TrainConfig};
use c2pi_suite::nn::BoundaryId;
use c2pi_suite::pi::cheetah;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The hospital's training corpus (synthetic stand-in) and model.
    let corpus =
        SynthDataset::generate(&SynthConfig { classes: 4, per_class: 8, ..Default::default() })
            .into_dataset();
    let mut model = vgg16(&ZooConfig { width_div: 32, num_classes: 4, ..Default::default() })?;
    println!("hospital trains its VGG16 diagnostic model...");
    train_classifier(
        model.seq_mut(),
        corpus.images(),
        corpus.labels(),
        &TrainConfig { epochs: 10, batch_size: 8, lr: 0.02, momentum: 0.9, seed: 1 },
    )?;

    // The patient's private scan (held only by the client).
    let patient_scan = corpus.images()[5].clone();

    // C2PI inference with the boundary at conv 6 and λ = 0.1 noise. The
    // hospital preprocesses before the patient arrives, so the scan only
    // pays the online phase.
    let boundary = BoundaryId::relu(6);
    let mut session = C2pi::builder(model.clone())
        .split_at(boundary)
        .noise(0.1)
        .noise_seed(9)
        .backend(cheetah())
        .build()?;
    session.preprocess(1)?;
    let result = session.infer(&patient_scan)?;
    println!(
        "diagnosis class: {} ({:.2} MB of crypto traffic)",
        result.prediction,
        result.report.comm_mb()
    );

    // Now play the curious server: train DINA on the hospital's own data
    // and attack the activation that was actually revealed.
    println!("\ncurious server trains DINA against the boundary and attacks...");
    let mut dina = Dina::new(DinaConfig { epochs: 20, ..Default::default() });
    dina.prepare(&mut model, boundary, &corpus, 0.1)?;
    let revealed = result.revealed_activation.expect("c2pi reveals the boundary");
    let reconstruction = dina.recover(&mut model, boundary, &revealed)?;
    let similarity = ssim(&patient_scan, &reconstruction)?;
    println!("DINA reconstruction SSIM vs the real scan: {similarity:.3}");
    if similarity < 0.3 {
        println!("below the 0.3 identification threshold — the scan stays private.");
    } else {
        println!("above threshold — this boundary is too early; push it deeper.");
    }
    Ok(())
}
