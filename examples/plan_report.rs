//! The deployment planner end to end: train a model, audit every
//! candidate boundary with an IDPA probe panel, price each allowed
//! boundary under both backends and the mem/LAN/WAN network models, and
//! print the ranked boundary/cost/privacy table — then prove the
//! top-ranked plan serves correctly by round-tripping it through
//! `C2pi::builder(...).plan(...)` and checking every smoke prediction
//! against the clear model.
//!
//! The output is deterministic for a fixed `--seed`: traffic is
//! measured from the real protocol transcript (which is
//! seed-determined) and compute is priced by constant calibration
//! coefficients. `--calibrate` swaps in coefficients measured on this
//! machine (accurate, but no longer reproducible).
//!
//! ```text
//! cargo run --release --example plan_report -- --seed 47
//! cargo run --release --example plan_report -- --probes mla:60,dina:6 --calibrate
//! ```

use c2pi_suite::attacks::probe::ProbeSpec;
use c2pi_suite::core::pipeline::plain_prediction;
use c2pi_suite::core::planner::{DeploymentPlanner, PlannerConfig};
use c2pi_suite::core::session::C2pi;
use c2pi_suite::data::synth::{SynthConfig, SynthDataset};
use c2pi_suite::nn::model::{alexnet, ZooConfig};
use c2pi_suite::nn::train::{train_classifier, TrainConfig};
use c2pi_suite::pi::calibrate::Calibrator;
use c2pi_suite::pi::PiBackend;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut seed = 47u64;
    let mut probes = "mla:40,dina:4".to_string();
    let mut calibrate = false;
    let mut emit_json = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => seed = args.next().ok_or("--seed needs a value")?.parse()?,
            "--probes" => probes = args.next().ok_or("--probes needs a value")?,
            "--calibrate" => calibrate = true,
            "--json" => emit_json = true,
            other => return Err(format!("unknown flag {other}").into()),
        }
    }
    let probes = probes
        .split(',')
        .filter(|s| !s.is_empty())
        .map(ProbeSpec::parse)
        .collect::<Result<Vec<_>, _>>()?;

    // Deterministic experiment substrate: synthetic data, short
    // training run (everything below is a pure function of `seed` and
    // the fixed constants).
    let data = SynthDataset::generate(&SynthConfig {
        classes: 4,
        per_class: 6,
        image_size: 16,
        pixel_noise: 0.02,
        ..Default::default()
    })
    .into_dataset();
    let (train, eval) = data.split(0.7, 3)?;
    let mut model =
        alexnet(&ZooConfig { width_div: 32, num_classes: 4, image_size: 16, seed: 42 })?;
    eprintln!("training the target model...");
    train_classifier(
        model.seq_mut(),
        train.images(),
        train.labels(),
        &TrainConfig { epochs: 20, batch_size: 8, lr: 0.005, momentum: 0.9, seed: 7 },
    )?;

    let costs = if calibrate {
        eprintln!("calibrating per-operation online timings on this machine...");
        let cal = Calibrator::default();
        vec![
            (PiBackend::Cheetah, cal.measure(PiBackend::Cheetah)?),
            (PiBackend::Delphi, cal.measure(PiBackend::Delphi)?),
        ]
    } else {
        Vec::new()
    };
    let cfg = PlannerConfig { probes, eval_images: 3, seed, costs, ..Default::default() };
    eprintln!("planning (probe panel + accuracy gate + cost sweep)...");
    let plan = DeploymentPlanner::new(&mut model, &train, &eval, cfg).plan()?;

    print!("{}", plan.render_table());
    if emit_json {
        println!("\n{}", plan.to_json());
    }

    // Round trip: the top-ranked plan must serve predictions
    // bit-identical to the clear model on the smoke inputs. The smoke
    // set is confidently-classified training images and the whole
    // pipeline is a pure function of `seed`, so this either always
    // passes or always fails for a given tree — a flipped prediction
    // means the planned deployment really changed behaviour, exactly
    // what the smoke should catch.
    let best = plan.best().ok_or("no allowed deployment")?;
    if !best.gates_passed {
        return Err(format!(
            "no boundary passed the privacy/accuracy gates; the least-bad fallback is {} @ {} \
             (worst probe SSIM {:.3}) — not deploying it",
            best.backend.name(),
            best.boundary,
            best.worst_ssim
        )
        .into());
    }
    let mut session = C2pi::builder(model.clone()).plan(best).build()?;
    let smoke: Vec<_> = train.images().iter().take(4).cloned().collect();
    session.preprocess(smoke.len())?;
    let mut ok = 0;
    for x in &smoke {
        let clear = plain_prediction(&model, x)?;
        let private = session.infer(x)?.prediction;
        if clear == private {
            ok += 1;
        } else {
            eprintln!("round-trip mismatch: clear {clear} vs planned deployment {private}");
        }
    }
    println!(
        "\nround-trip: {}/{} smoke predictions bit-identical to the clear model ({} @ {} over {})",
        ok,
        smoke.len(),
        best.backend.name(),
        best.boundary,
        best.net,
    );
    let server = plan.server_config(4);
    println!(
        "suggested serving config: worker_cap {}, pool watermarks {}..{}",
        server.worker_cap, server.pool_low, server.pool_high
    );
    if ok != smoke.len() {
        return Err("round-trip predictions diverged from the clear model".into());
    }
    Ok(())
}
