//! Compares all four IDPAs (MLA, INA, EINA, DINA) at a single boundary:
//! who reconstructs the client's input best? DINA should lead,
//! replicating the ordering of the paper's Figure 4.
//!
//! ```text
//! cargo run --release --example attack_comparison
//! ```

use c2pi_suite::attacks::dina::{Dina, DinaConfig};
use c2pi_suite::attacks::eval::{avg_ssim_at, EvalConfig};
use c2pi_suite::attacks::inversion::{InaArch, InaConfig, InversionAttack};
use c2pi_suite::attacks::mla::{Mla, MlaConfig};
use c2pi_suite::attacks::Idpa;
use c2pi_suite::data::synth::{SynthConfig, SynthDataset};
use c2pi_suite::nn::model::{vgg16, ZooConfig};
use c2pi_suite::nn::BoundaryId;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let data =
        SynthDataset::generate(&SynthConfig { classes: 4, per_class: 6, ..Default::default() })
            .into_dataset();
    let (train, eval) = data.split(0.7, 3)?;
    let mut model = vgg16(&ZooConfig { width_div: 32, num_classes: 4, ..Default::default() })?;

    let boundary = BoundaryId::relu(4);
    let cfg = EvalConfig { noise: 0.1, eval_images: 3, ..Default::default() };
    let epochs = 20;

    let mut attacks: Vec<Box<dyn Idpa>> = vec![
        Box::new(Mla::new(MlaConfig { iterations: 150, ..Default::default() })),
        Box::new(InversionAttack::new(InaConfig {
            arch: InaArch::Plain,
            epochs,
            ..Default::default()
        })),
        Box::new(InversionAttack::new(InaConfig {
            arch: InaArch::Residual,
            epochs,
            ..Default::default()
        })),
        Box::new(Dina::new(DinaConfig { epochs, ..Default::default() })),
    ];

    println!("attacking VGG16 at layer {boundary} (noise 0.1):\n");
    println!("attack | avg SSIM over {} images", cfg.eval_images);
    println!("-------+-------------------------");
    for attack in attacks.iter_mut() {
        attack.prepare(&mut model, boundary, &train, cfg.noise)?;
        let s = avg_ssim_at(attack.as_mut(), &mut model, boundary, &eval, &cfg)?;
        println!("{:>6} | {s:.3}", attack.name());
    }
    println!("\n(the paper's ordering at full scale: DINA > EINA > MLA/INA)");
    Ok(())
}
