//! Standalone multi-client PI server: a `PiServer` accept loop over the
//! shared demo session, serving any number of `multi_client` processes.
//!
//! ```text
//! cargo run --release --example pi_server -- --backend cheetah --addr 127.0.0.1:0 --serve-n 8
//! ```
//!
//! Binds port 0 by default (no fixed-port races) and announces the real
//! address on stdout as `C2PI_LISTENING <addr>` so a supervisor (the CI
//! smoke script) can hand it to clients. With `--serve-n N` the server
//! exits once N connections finished (non-zero if any errored);
//! otherwise it serves until killed.
//!
//! With `--persist <path>` the server attaches a crash-safe
//! [`MaterialStore`](c2pi_suite::pi::MaterialStore) before preprocessing
//! and announces the warm-boot outcome as
//! `C2PI_WARMBOOT restored=<n> drawn=<n> truncated=<bool>` — a restarted
//! server resumes the unconsumed pool without re-preprocessing.

#[path = "two_party/common.rs"]
mod common;

use c2pi_suite::core::server::{PiServer, PiServerConfig};
use std::time::{Duration, Instant};

struct Opts {
    addr: String,
    backend: c2pi_suite::pi::PiBackend,
    serve_n: u64,
    preprocess: usize,
    cfg: PiServerConfig,
    timeout: Duration,
}

fn parse_opts() -> Opts {
    let mut opts = Opts {
        addr: "127.0.0.1:0".to_string(),
        backend: c2pi_suite::pi::PiBackend::Cheetah,
        serve_n: 0,
        preprocess: 4,
        cfg: PiServerConfig::default(),
        timeout: Duration::from_secs(300),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| panic!("missing value"));
        match flag.as_str() {
            "--addr" => opts.addr = val(),
            "--backend" => opts.backend = common::parse_backend(&val()),
            "--serve-n" => opts.serve_n = val().parse().expect("--serve-n takes a count"),
            "--preprocess" => opts.preprocess = val().parse().expect("--preprocess takes a count"),
            "--worker-cap" => {
                opts.cfg.worker_cap = val().parse().expect("--worker-cap takes a count");
            }
            "--pool-low" => opts.cfg.pool_low = val().parse().expect("--pool-low takes a count"),
            "--pool-high" => opts.cfg.pool_high = val().parse().expect("--pool-high takes a count"),
            "--persist" => opts.cfg.persist_path = Some(val().into()),
            "--timeout-secs" => {
                opts.timeout = Duration::from_secs(val().parse().expect("--timeout-secs"));
            }
            other => panic!("unknown flag {other:?}"),
        }
    }
    opts
}

fn main() {
    let opts = parse_opts();
    let session = common::build_session(opts.backend).into_shared();
    // A persistent store must attach to a fresh pool, so when persisting
    // the server binds (which attaches) before the initial offline phase
    // tops the pool up past what the store restored.
    if opts.cfg.persist_path.is_none() {
        session.preprocess(opts.preprocess).expect("initial offline phase");
    }
    let server = PiServer::bind(session, &opts.addr[..], opts.cfg.clone()).expect("bind server");
    if let Some(boot) = server.warm_boot() {
        println!(
            "C2PI_WARMBOOT restored={} drawn={} truncated={}",
            boot.restored, boot.drawn, boot.truncated_tail
        );
        server.session().preprocess(opts.preprocess).expect("initial offline phase");
    }
    println!(
        "[pi_server] backend {} — serving on {} (workers {}, pool {}..{})",
        server.session().backend_name(),
        server.local_addr(),
        opts.cfg.worker_cap,
        opts.cfg.pool_low,
        opts.cfg.pool_high,
    );
    common::announce_listening(server.local_addr());

    if opts.serve_n == 0 {
        loop {
            std::thread::sleep(Duration::from_secs(3600));
        }
    }
    let start = Instant::now();
    while server.served() + server.errors() < opts.serve_n {
        if start.elapsed() > opts.timeout {
            eprintln!(
                "[pi_server] TIMEOUT after {} of {} connections",
                server.served() + server.errors(),
                opts.serve_n
            );
            std::process::exit(2);
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    let errors = server.errors();
    let ledger = server.session().ledger();
    println!(
        "[pi_server] done — {} served, {} errors; ledger: {} offline + {} inline \
         = {} consumed + {} pooled",
        server.served(),
        errors,
        ledger.generated_offline,
        ledger.generated_inline,
        ledger.consumed,
        ledger.available,
    );
    server.shutdown();
    if errors > 0 {
        std::process::exit(1);
    }
}
