//! Standalone multi-client PI server: a readiness-driven
//! [`ReactorServer`] over the shared demo session, serving any number of
//! `multi_client` processes.
//!
//! ```text
//! cargo run --release --example pi_server -- --backend cheetah --addr 127.0.0.1:0 \
//!     --workers 4 --shards 4 --max-clients 1024 --serve-n 8
//! ```
//!
//! One reactor thread multiplexes every connection; `--workers` threads
//! run the online protocol, each homed on one of `--shards` material
//! shards (work-stealing between them); `--max-clients` bounds tracked
//! connections, everything beyond it is shed with a typed `BUSY` frame.
//!
//! Binds port 0 by default (no fixed-port races) and announces the real
//! address on stdout as `C2PI_LISTENING <addr>` so a supervisor (the CI
//! smoke script) can hand it to clients. With `--serve-n N` the server
//! drains gracefully once N connections finished (non-zero if any
//! errored); otherwise it serves until killed.
//!
//! With `--persist <base>` every shard attaches a crash-safe
//! [`MaterialStore`](c2pi_suite::pi::MaterialStore) segment
//! (`<base>.shard<i>`) before preprocessing and the server announces the
//! aggregate warm-boot outcome as
//! `C2PI_WARMBOOT restored=<n> drawn=<n> truncated=<bool>` — a restarted
//! server resumes the unconsumed pool without re-preprocessing.
//!
//! `--batch-window-ms W --max-batch K` turn on cross-client coalescing:
//! concurrent inferences arriving within W milliseconds fuse into one
//! batched protocol run of up to K members (off by default — W of 0 or
//! K of 1 keeps the solo path). The final reactor line reports
//! `coalesced=` and `batches=` so a harness can assert batching really
//! happened.
//!
//! `--preprocess-delay-ms D` starts serving *before* dealing the initial
//! material: for D milliseconds every inference request is answered with
//! `BUSY` (clients are expected to honour the retry-after), which is how
//! the smoke harness exercises the shed-and-retry path deliberately.

#[path = "two_party/common.rs"]
mod common;

use c2pi_suite::core::reactor::{ReactorConfig, ReactorServer};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Opts {
    addr: String,
    backend: c2pi_suite::pi::PiBackend,
    serve_n: u64,
    preprocess: usize,
    preprocess_delay: Option<Duration>,
    cfg: ReactorConfig,
    timeout: Duration,
}

fn parse_opts() -> Opts {
    let mut opts = Opts {
        addr: "127.0.0.1:0".to_string(),
        backend: c2pi_suite::pi::PiBackend::Cheetah,
        serve_n: 0,
        preprocess: 4,
        preprocess_delay: None,
        cfg: ReactorConfig::default(),
        timeout: Duration::from_secs(300),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| panic!("missing value"));
        match flag.as_str() {
            "--addr" => opts.addr = val(),
            "--backend" => opts.backend = common::parse_backend(&val()),
            "--serve-n" => opts.serve_n = val().parse().expect("--serve-n takes a count"),
            "--preprocess" => opts.preprocess = val().parse().expect("--preprocess takes a count"),
            "--preprocess-delay-ms" => {
                opts.preprocess_delay =
                    Some(Duration::from_millis(val().parse().expect("--preprocess-delay-ms")));
            }
            // --worker-cap is the pre-reactor spelling; keep it working.
            "--workers" | "--worker-cap" => {
                opts.cfg.workers = val().parse().expect("--workers takes a count");
            }
            "--shards" => opts.cfg.shards = val().parse().expect("--shards takes a count"),
            "--max-clients" => {
                opts.cfg.max_clients = val().parse().expect("--max-clients takes a count");
            }
            "--pool-low" => opts.cfg.pool_low = val().parse().expect("--pool-low takes a count"),
            "--pool-high" => opts.cfg.pool_high = val().parse().expect("--pool-high takes a count"),
            "--retry-after-ms" => {
                opts.cfg.retry_after =
                    Duration::from_millis(val().parse().expect("--retry-after-ms"));
            }
            "--persist" => opts.cfg.persist_path = Some(val().into()),
            "--batch-window-ms" => {
                opts.cfg.batch_window =
                    Duration::from_millis(val().parse().expect("--batch-window-ms"));
            }
            "--max-batch" => {
                opts.cfg.max_batch = val().parse().expect("--max-batch takes a count");
            }
            "--timeout-secs" => {
                opts.timeout = Duration::from_secs(val().parse().expect("--timeout-secs"));
            }
            other => panic!("unknown flag {other:?}"),
        }
    }
    opts
}

fn main() {
    let opts = parse_opts();
    let session = common::build_session(opts.backend).into_shared();
    // The reactor owns its own sharded pool (created inside bind, warm-
    // booted from the persistent segments when --persist is set), so the
    // initial offline phase always runs after bind, against that pool.
    let server = ReactorServer::bind(Arc::clone(session.core()), &opts.addr[..], opts.cfg.clone())
        .expect("bind server");
    if let Some(boot) = server.warm_boot() {
        println!(
            "C2PI_WARMBOOT restored={} drawn={} truncated={}",
            boot.restored, boot.drawn, boot.truncated_tail
        );
    }
    match opts.preprocess_delay {
        // Deliberate starvation window: announce first, deal later, and
        // let the typed backpressure frames carry the interval.
        Some(delay) => {
            let pool = Arc::clone(server.pool());
            let n = opts.preprocess;
            std::thread::spawn(move || {
                std::thread::sleep(delay);
                pool.preprocess(n).expect("delayed offline phase");
            });
        }
        None => server.preprocess(opts.preprocess).expect("initial offline phase"),
    }
    let shards = server.pool().shard_count();
    println!(
        "[pi_server] backend {} — serving on {} (workers {}, shards {shards}, \
         max-clients {}, pool {}..{} per shard)",
        session.backend_name(),
        server.local_addr(),
        opts.cfg.workers,
        opts.cfg.max_clients,
        opts.cfg.pool_low,
        opts.cfg.pool_high,
    );
    common::announce_listening(server.local_addr());

    if opts.serve_n == 0 {
        loop {
            std::thread::sleep(Duration::from_secs(3600));
        }
    }
    let start = Instant::now();
    loop {
        let snap = server.metrics_snapshot();
        if snap.served + snap.errors >= opts.serve_n {
            break;
        }
        if start.elapsed() > opts.timeout {
            eprintln!(
                "[pi_server] TIMEOUT after {} of {} connections",
                snap.served + snap.errors,
                opts.serve_n
            );
            std::process::exit(2);
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    let snap = server.metrics_snapshot();
    let ledger = server.pool().ledger();
    println!(
        "[pi_server] done — {} served, {} errors; ledger: {} offline + {} inline \
         = {} consumed + {} pooled",
        snap.served,
        snap.errors,
        ledger.generated_offline,
        ledger.generated_inline,
        ledger.consumed,
        ledger.available,
    );
    println!(
        "[pi_server] reactor: accepted={} shed={} steals={} hangups={} coalesced={} batches={} \
         poll_backend={} poll_wakeups={} poll_events={}",
        snap.accepted,
        snap.shed,
        snap.steals,
        snap.hangups,
        snap.coalesced,
        snap.batches,
        snap.poll_backend,
        snap.poll_wakeups,
        snap.poll_events
    );
    let errors = snap.errors;
    server.drain().expect("graceful drain");
    if errors > 0 {
        std::process::exit(1);
    }
}
